#include "core/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <fstream>

#include "stats/sharded_evaluator.h"

namespace surf {

Region RegionWorkload::RegionAt(size_t i) const {
  assert(i < size());
  return Region::FromFlat(features.Row(i));
}

std::vector<double> RegionFeatures(const Region& region) {
  return region.ToFlat();
}

RegionWorkload GenerateWorkload(const RegionEvaluator& evaluator,
                                const Bounds& domain,
                                const WorkloadParams& params,
                                CancelToken cancel, TraceContext* trace) {
  assert(params.min_length_frac > 0.0 &&
         params.min_length_frac < params.max_length_frac);
  const size_t d = domain.dims();
  Rng rng(params.seed);

  RegionWorkload workload;
  workload.statistic = evaluator.statistic();
  workload.space = RegionSolutionSpace::ForBounds(
      domain, params.min_length_frac, params.max_length_frac);
  workload.features = FeatureMatrix(2 * d);
  workload.features.Reserve(params.num_queries);
  workload.targets.reserve(params.num_queries);

  TraceSpan gen_span(trace, "workload_gen", TraceStage::kWorkloadGen);
  // Labelling children: one span per 256-query batch (aligned with the
  // cancellation poll below) rather than per query, so the trace stays
  // bounded. On the sharded backend each batch span also carries the
  // evaluator's prune/block/scan counter deltas for that batch.
  const ShardedScanEvaluator* sharded =
      trace == nullptr
          ? nullptr
          : dynamic_cast<const ShardedScanEvaluator*>(&evaluator);
  int32_t batch = -1;
  uint64_t pruned0 = 0, merged0 = 0, scanned0 = 0;
  auto close_batch = [&] {
    if (batch < 0) return;
    if (sharded != nullptr) {
      trace->AddAttr(batch, "shards_pruned",
                     std::to_string(sharded->shards_pruned() - pruned0));
      trace->AddAttr(
          batch, "shards_block_merged",
          std::to_string(sharded->shards_block_merged() - merged0));
      trace->AddAttr(batch, "shards_scanned",
                     std::to_string(sharded->shards_scanned() - scanned0));
    }
    trace->EndSpan(batch);
    batch = -1;
  };

  // Draw every region up front. The RNG sequence is label-independent
  // (center then half per dimension, exactly as the historical
  // draw-then-label loop interleaved them), so the generated regions are
  // draw-for-draw identical — only the labelling below changed shape.
  std::vector<Region> regions;
  regions.reserve(params.num_queries);
  std::vector<double> center(d), half(d);
  for (size_t q = 0; q < params.num_queries; ++q) {
    for (size_t i = 0; i < d; ++i) {
      center[i] = rng.Uniform(domain.lo(i), domain.hi(i));
      // Per-dimension extent scaling (the paper's % of data domain).
      half[i] = rng.Uniform(params.min_length_frac * domain.Extent(i),
                            params.max_length_frac * domain.Extent(i));
    }
    regions.emplace_back(center, half);
  }

  // Label in 256-query batches through EvaluateBatch — the seam that
  // lets the distributed backend ship one RPC per batch instead of one
  // per region; the default implementation loops Evaluate, so in-process
  // backends label the same regions in the same order as ever. The token
  // is polled per batch here and rides into the evaluator too (sharded
  // scans poll it per shard, so cancellation lands mid-evaluation on
  // huge datasets instead of waiting for the batch boundary).
  constexpr size_t kLabelBatch = 256;
  for (size_t start = 0; start < regions.size(); start += kLabelBatch) {
    if (cancel.cancelled()) break;
    const size_t count = std::min(kLabelBatch, regions.size() - start);
    if (trace != nullptr) {
      close_batch();
      batch = trace->BeginSpan("label_batch", TraceStage::kLabelling);
      if (sharded != nullptr) {
        pruned0 = sharded->shards_pruned();
        merged0 = sharded->shards_block_merged();
        scanned0 = sharded->shards_scanned();
      }
    }
    const std::vector<Region> chunk(regions.begin() + start,
                                    regions.begin() + start + count);
    const std::vector<double> labels = evaluator.EvaluateBatch(chunk, cancel);
    for (size_t k = 0; k < labels.size(); ++k) {
      if (params.drop_undefined && std::isnan(labels[k])) continue;
      workload.features.AddRow(RegionFeatures(chunk[k]));
      workload.targets.push_back(labels[k]);
    }
    // A short batch is the cancellation signature: every returned label
    // is complete (and kept), the rest were never computed.
    if (labels.size() < count) break;
  }
  close_batch();
  gen_span.Attr("labelled", static_cast<uint64_t>(workload.size()));
  return workload;
}

Status SaveWorkload(const RegionWorkload& workload,
                    const std::string& path) {
  std::ofstream os(path);
  if (!os) return Status::IOError("cannot write " + path);
  os.precision(17);
  const size_t d = workload.space.dims();
  os << "# surf-workload-v1 dims=" << d
     << " min_len=" << workload.space.min_half_length
     << " max_len=" << workload.space.max_half_length;
  for (size_t i = 0; i < d; ++i) {
    os << " b" << i << "=" << workload.space.bounds.lo(i) << ":"
       << workload.space.bounds.hi(i);
  }
  os << "\n";
  for (size_t r = 0; r < workload.size(); ++r) {
    for (size_t j = 0; j < workload.features.num_features(); ++j) {
      os << workload.features.Get(r, j) << ",";
    }
    os << workload.targets[r] << "\n";
  }
  if (!os) return Status::IOError("short write to " + path);
  return Status::OK();
}

StatusOr<RegionWorkload> LoadWorkload(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IOError("cannot open " + path);
  std::string magic, dims_kv;
  is >> magic >> magic;  // skip '#', read tag
  if (magic != "surf-workload-v1") {
    return Status::IOError("bad workload header in " + path);
  }
  RegionWorkload workload;
  size_t d = 0;
  {
    std::string kv;
    is >> kv;  // dims=N
    d = static_cast<size_t>(std::strtoull(kv.c_str() + 5, nullptr, 10));
    if (d == 0) return Status::IOError("bad dims in " + path);
    is >> kv;  // min_len=
    workload.space.min_half_length = std::strtod(kv.c_str() + 8, nullptr);
    is >> kv;  // max_len=
    workload.space.max_half_length = std::strtod(kv.c_str() + 8, nullptr);
    std::vector<double> lo(d), hi(d);
    for (size_t i = 0; i < d; ++i) {
      is >> kv;  // bI=lo:hi
      const size_t eq = kv.find('=');
      const size_t colon = kv.find(':');
      if (eq == std::string::npos || colon == std::string::npos) {
        return Status::IOError("bad bounds in " + path);
      }
      lo[i] = std::strtod(kv.substr(eq + 1, colon - eq - 1).c_str(),
                          nullptr);
      hi[i] = std::strtod(kv.substr(colon + 1).c_str(), nullptr);
    }
    workload.space.bounds = Bounds(lo, hi);
  }
  workload.features = FeatureMatrix(2 * d);
  std::string line;
  std::getline(is, line);  // consume the header's newline
  size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::vector<double> row;
    const char* p = line.c_str();
    char* end = nullptr;
    for (;;) {
      const double v = std::strtod(p, &end);
      if (end == p) break;
      row.push_back(v);
      p = (*end == ',') ? end + 1 : end;
      if (*end == '\0') break;
    }
    if (row.size() != 2 * d + 1) {
      return Status::IOError("bad row at line " + std::to_string(line_no) +
                             " of " + path);
    }
    workload.targets.push_back(row.back());
    row.pop_back();
    workload.features.AddRow(row);
  }
  return workload;
}

Status MergeWorkloads(RegionWorkload* base, const RegionWorkload& extra) {
  assert(base != nullptr);
  if (base->features.num_features() != extra.features.num_features()) {
    return Status::InvalidArgument("workload feature width mismatch");
  }
  for (size_t r = 0; r < extra.size(); ++r) {
    base->features.AddRow(extra.features.Row(r));
    base->targets.push_back(extra.targets[r]);
  }
  return Status::OK();
}

}  // namespace surf
