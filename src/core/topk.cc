#include "core/topk.h"

#include <cassert>
#include <cmath>

namespace surf {

namespace {

/// Threshold-free fitness on an already-computed statistic: maximize the
/// statistic itself, size-penalized exactly like Eq. 4 (log form keeps
/// the scale-free regularization).
FitnessValue TopKFitness(const Region& region, double y, double c) {
  FitnessValue out;
  if (std::isnan(y) || !std::isfinite(y) || y <= 0.0) return out;
  double size_penalty = 0.0;
  for (size_t i = 0; i < region.dims(); ++i) {
    const double l = region.half_length(i);
    if (l <= 0.0) return out;
    size_penalty += std::log(l);
  }
  out.value = std::log(y) - c * size_penalty;
  out.valid = true;
  return out;
}

}  // namespace

TopKFinder::TopKFinder(StatisticFn estimate, RegionSolutionSpace space,
                       TopKConfig config)
    : estimate_(std::move(estimate)),
      space_(std::move(space)),
      config_(config) {
  assert(estimate_ != nullptr);
  assert(config_.k > 0);
}

TopKResult TopKFinder::Find() const {
  const double c = config_.c;
  const GlowwormSwarmOptimizer gso(config_.gso);

  GsoResult swarm;
  {
    TraceSpan search_span(trace_, "search", TraceStage::kSearch);
    if (batch_estimate_ != nullptr) {
      // One batched model call scores the whole swarm per iteration.
      const BatchStatisticFn batch_estimate = batch_estimate_;
      const BatchFitnessFn fitness =
          [&batch_estimate, c](const std::vector<Region>& regions) {
            std::vector<FitnessValue> out(regions.size());
            if (regions.empty()) return out;
            // Degenerate regions never reach the model (mirrors the
            // scalar path's short-circuit).
            std::vector<Region> live;
            std::vector<size_t> live_idx;
            live.reserve(regions.size());
            for (size_t i = 0; i < regions.size(); ++i) {
              if (regions[i].Degenerate()) continue;
              live.push_back(regions[i]);
              live_idx.push_back(i);
            }
            const std::vector<double> ys = batch_estimate(live);
            for (size_t k = 0; k < live.size(); ++k) {
              out[live_idx[k]] = TopKFitness(live[k], ys[k], c);
            }
            return out;
          };
      swarm = gso.Optimize(fitness, space_, kde_, cancel_, progress_, trace_);
    } else {
      const StatisticFn estimate = estimate_;
      const FitnessFn fitness = [&estimate, c](const Region& region) {
        if (region.Degenerate()) return FitnessValue{};
        return TopKFitness(region, estimate(region), c);
      };
      swarm = gso.Optimize(fitness, space_, kde_, cancel_, progress_, trace_);
    }
    search_span.Attr("iterations",
                     static_cast<uint64_t>(swarm.iterations_run));
  }
  TraceSpan extraction_span(trace_, "extraction", TraceStage::kExtraction);

  // Score the surviving valid particles with one batched call.
  std::vector<Region> valid_regions;
  for (size_t i = 0; i < swarm.particles.size(); ++i) {
    if (swarm.valid[i]) valid_regions.push_back(swarm.particles[i]);
  }
  const std::vector<double> estimates =
      EvaluateStatistics(valid_regions, estimate_, batch_estimate_);

  std::vector<ScoredRegion> candidates;
  for (size_t i = 0, v = 0; i < swarm.particles.size(); ++i) {
    if (!swarm.valid[i]) continue;
    ScoredRegion cand;
    cand.region = swarm.particles[i];
    cand.fitness = swarm.fitness[i];
    cand.statistic = estimates[v++];
    candidates.push_back(std::move(cand));
  }

  TopKResult result;
  result.regions = SelectDistinctRegions(std::move(candidates),
                                         config_.nms_max_iou, config_.k);
  result.iterations = swarm.iterations_run;
  result.objective_evaluations = swarm.objective_evaluations;
  result.cancelled = swarm.cancelled;
  extraction_span.Attr("regions",
                       static_cast<uint64_t>(result.regions.size()));
  return result;
}

}  // namespace surf
