#ifndef SURF_STATS_EVALUATOR_H_
#define SURF_STATS_EVALUATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "geom/region.h"
#include "stats/statistic.h"
#include "util/cancel.h"

namespace surf {

/// \brief Interface of the "back-end data system" that computes the true
/// statistic f(x, l) for a region (paper Def. 3). Implementations trade
/// build cost for query cost; all of them are exact.
///
/// Evaluators count how many region evaluations they served — the paper's
/// cost model is "number of f evaluations × cost per evaluation", and the
/// benches report both.
class RegionEvaluator {
 public:
  virtual ~RegionEvaluator() = default;

  /// Computes y = f(x, l). Returns NaN where f is undefined (mean-like
  /// statistics over empty regions).
  double Evaluate(const Region& region) const {
    return Evaluate(region, CancelToken());
  }

  /// Cancellable form: long scans poll `cancel` between batches (the
  /// sharded backend polls per shard, the reference scan every 64Ki
  /// rows) and unwind early when it fires. The value returned after a
  /// cancellation is a partial aggregate and must be discarded — callers
  /// check the token, exactly as GenerateWorkload does.
  double Evaluate(const Region& region, const CancelToken& cancel) const {
    evaluations_.fetch_add(1, std::memory_order_relaxed);
    return EvaluateImpl(region, cancel);
  }

  /// Labels a batch of regions. Returns one value per region in order;
  /// a fired `cancel` yields a *prefix* (possibly empty) — every
  /// returned label is complete, the rest were never computed. The
  /// default implementation loops Evaluate; backends that amortize
  /// per-call overhead across a batch (the distributed scatter-gather
  /// evaluator ships one RPC per batch) override EvaluateBatchImpl.
  std::vector<double> EvaluateBatch(const std::vector<Region>& regions,
                                    const CancelToken& cancel) const {
    std::vector<double> labels = EvaluateBatchImpl(regions, cancel);
    evaluations_.fetch_add(labels.size(), std::memory_order_relaxed);
    return labels;
  }

  /// The statistic this evaluator computes.
  virtual const Statistic& statistic() const = 0;

  /// Number of Evaluate() calls served so far.
  uint64_t evaluation_count() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

  void ResetEvaluationCount() { evaluations_.store(0); }

 protected:
  virtual double EvaluateImpl(const Region& region,
                              const CancelToken& cancel) const = 0;

  /// Batch body behind EvaluateBatch (which does the evaluation-count
  /// bookkeeping — implementations must not touch the counter). The
  /// default loops EvaluateImpl with the same discard-partial-on-cancel
  /// contract as the scalar path: poll before each region, drop the
  /// in-flight label if the token fired during it.
  virtual std::vector<double> EvaluateBatchImpl(
      const std::vector<Region>& regions, const CancelToken& cancel) const {
    std::vector<double> labels;
    labels.reserve(regions.size());
    for (const Region& region : regions) {
      if (cancel.cancelled()) break;
      const double y = EvaluateImpl(region, cancel);
      if (cancel.cancelled()) break;
      labels.push_back(y);
    }
    return labels;
  }

 private:
  mutable std::atomic<uint64_t> evaluations_{0};
};

/// \brief Reference evaluator: one full pass over the dataset per query,
/// O(N · d). This is the paper's cost model for Naive and f+GlowWorm.
class ScanEvaluator : public RegionEvaluator {
 public:
  /// Does not take ownership of `data`; it must outlive the evaluator.
  ScanEvaluator(const Dataset* data, Statistic stat);

  const Statistic& statistic() const override { return stat_; }

 protected:
  double EvaluateImpl(const Region& region,
                      const CancelToken& cancel) const override;

 private:
  const Dataset* data_;
  Statistic stat_;
};

}  // namespace surf

#endif  // SURF_STATS_EVALUATOR_H_
