#include "prim/prim.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace surf {

namespace {

/// Quantile of the values of feature `dim` over `rows` (interpolated).
double FeatureQuantile(const FeatureMatrix& x, const std::vector<size_t>& rows,
                       size_t dim, double q) {
  std::vector<double> vals;
  vals.reserve(rows.size());
  for (size_t r : rows) vals.push_back(x.Get(r, dim));
  std::sort(vals.begin(), vals.end());
  const double pos = q * static_cast<double>(vals.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, vals.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return vals[lo] * (1.0 - frac) + vals[hi] * frac;
}

double MeanOver(const std::vector<double>& y, const std::vector<size_t>& rows) {
  if (rows.empty()) return -std::numeric_limits<double>::infinity();
  double s = 0.0;
  for (size_t r : rows) s += y[r];
  return s / static_cast<double>(rows.size());
}

}  // namespace

bool Prim::FindBox(const FeatureMatrix& x, const std::vector<double>& y,
                   const std::vector<size_t>& active, size_t n_total,
                   PrimBox* out, uint64_t* peels, uint64_t* pastes) const {
  const size_t d = x.num_features();
  if (active.empty()) return false;

  // Current box corners, initialized to the active points' bounding box.
  std::vector<double> lo(d, std::numeric_limits<double>::infinity());
  std::vector<double> hi(d, -std::numeric_limits<double>::infinity());
  for (size_t r : active) {
    for (size_t j = 0; j < d; ++j) {
      lo[j] = std::min(lo[j], x.Get(r, j));
      hi[j] = std::max(hi[j], x.Get(r, j));
    }
  }

  std::vector<size_t> in_box = active;
  const size_t min_count = std::max<size_t>(
      2, static_cast<size_t>(params_.min_support *
                             static_cast<double>(n_total)));

  // Trajectory of (box, mean, count); the final answer is the
  // highest-mean admissible entry.
  struct Snapshot {
    std::vector<double> lo, hi;
    double mean;
    size_t count;
  };
  std::vector<Snapshot> trajectory;
  trajectory.push_back({lo, hi, MeanOver(y, in_box), in_box.size()});

  // --- Top-down peeling ---
  while (in_box.size() > min_count) {
    double best_mean = -std::numeric_limits<double>::infinity();
    size_t best_dim = 0;
    bool best_is_lower = true;
    double best_edge = 0.0;
    bool found = false;

    for (size_t j = 0; j < d; ++j) {
      // Lower peel: raise lo_j to the α-quantile.
      const double lower_edge =
          FeatureQuantile(x, in_box, j, params_.peel_alpha);
      // Upper peel: drop hi_j to the (1−α)-quantile.
      const double upper_edge =
          FeatureQuantile(x, in_box, j, 1.0 - params_.peel_alpha);

      double sum_keep_lo = 0.0, sum_keep_hi = 0.0;
      size_t n_keep_lo = 0, n_keep_hi = 0;
      for (size_t r : in_box) {
        const double v = x.Get(r, j);
        if (v >= lower_edge) {
          sum_keep_lo += y[r];
          ++n_keep_lo;
        }
        if (v <= upper_edge) {
          sum_keep_hi += y[r];
          ++n_keep_hi;
        }
      }
      // A peel must remove at least one point and keep enough support.
      if (n_keep_lo < in_box.size() && n_keep_lo >= min_count) {
        const double mean = sum_keep_lo / static_cast<double>(n_keep_lo);
        if (mean > best_mean) {
          best_mean = mean;
          best_dim = j;
          best_is_lower = true;
          best_edge = lower_edge;
          found = true;
        }
      }
      if (n_keep_hi < in_box.size() && n_keep_hi >= min_count) {
        const double mean = sum_keep_hi / static_cast<double>(n_keep_hi);
        if (mean > best_mean) {
          best_mean = mean;
          best_dim = j;
          best_is_lower = false;
          best_edge = upper_edge;
          found = true;
        }
      }
    }
    if (!found) break;

    // Apply the winning peel.
    ++(*peels);
    if (best_is_lower) {
      lo[best_dim] = best_edge;
      std::erase_if(in_box, [&](size_t r) {
        return x.Get(r, best_dim) < best_edge;
      });
    } else {
      hi[best_dim] = best_edge;
      std::erase_if(in_box, [&](size_t r) {
        return x.Get(r, best_dim) > best_edge;
      });
    }
    trajectory.push_back({lo, hi, MeanOver(y, in_box), in_box.size()});
  }

  // Trajectory selection. The strict argmax over means favours tiny
  // over-peeled boxes whose mean is high by sampling noise; Friedman &
  // Fisher instead advocate choosing the largest box that is "good
  // enough". We find the best admissible mean, then take the *earliest*
  // (largest-support) snapshot within the configured tolerance of it.
  double best_mean = -std::numeric_limits<double>::infinity();
  bool any_admissible = false;
  for (const auto& snap : trajectory) {
    if (snap.count >= min_count && snap.mean > best_mean) {
      best_mean = snap.mean;
      any_admissible = true;
    }
  }
  if (!any_admissible) return false;
  const double initial_mean = trajectory.front().mean;
  const double accept_mean =
      best_mean -
      params_.trajectory_tolerance * std::max(0.0, best_mean - initial_mean);
  int best_idx = -1;
  for (size_t i = 0; i < trajectory.size(); ++i) {
    if (trajectory[i].count >= min_count &&
        trajectory[i].mean >= accept_mean) {
      best_idx = static_cast<int>(i);
      break;
    }
  }
  assert(best_idx >= 0);
  lo = trajectory[static_cast<size_t>(best_idx)].lo;
  hi = trajectory[static_cast<size_t>(best_idx)].hi;

  auto contained = [&](size_t r) {
    for (size_t j = 0; j < d; ++j) {
      const double v = x.Get(r, j);
      if (v < lo[j] || v > hi[j]) return false;
    }
    return true;
  };
  in_box.clear();
  for (size_t r : active) {
    if (contained(r)) in_box.push_back(r);
  }
  double box_mean = MeanOver(y, in_box);

  // --- Bottom-up pasting ---
  if (params_.enable_pasting) {
    bool improved = true;
    while (improved) {
      improved = false;
      const size_t n_paste = std::max<size_t>(
          1, static_cast<size_t>(params_.paste_alpha *
                                 static_cast<double>(in_box.size())));
      for (size_t j = 0; j < d; ++j) {
        for (bool lower : {true, false}) {
          // Candidate points just outside the face, sorted by proximity.
          std::vector<std::pair<double, size_t>> outside;
          for (size_t r : active) {
            bool in_others = true;
            for (size_t k = 0; k < d; ++k) {
              if (k == j) continue;
              const double v = x.Get(r, k);
              if (v < lo[k] || v > hi[k]) {
                in_others = false;
                break;
              }
            }
            if (!in_others) continue;
            const double v = x.Get(r, j);
            if (lower && v < lo[j]) outside.push_back({lo[j] - v, r});
            if (!lower && v > hi[j]) outside.push_back({v - hi[j], r});
          }
          if (outside.empty()) continue;
          const size_t take = std::min(n_paste, outside.size());
          std::partial_sort(outside.begin(),
                            outside.begin() + static_cast<long>(take),
                            outside.end());
          double add_sum = 0.0;
          double new_edge = lower ? lo[j] : hi[j];
          for (size_t i = 0; i < take; ++i) {
            add_sum += y[outside[i].second];
            const double v = x.Get(outside[i].second, j);
            new_edge = lower ? std::min(new_edge, v) : std::max(new_edge, v);
          }
          const double new_mean =
              (box_mean * static_cast<double>(in_box.size()) + add_sum) /
              static_cast<double>(in_box.size() + take);
          if (new_mean > box_mean + 1e-12) {
            ++(*pastes);
            if (lower) {
              lo[j] = new_edge;
            } else {
              hi[j] = new_edge;
            }
            for (size_t i = 0; i < take; ++i) {
              in_box.push_back(outside[i].second);
            }
            box_mean = new_mean;
            improved = true;
          }
        }
      }
    }
  }

  out->region = Region::FromCorners(lo, hi);
  out->mean = box_mean;
  out->count = in_box.size();
  out->support =
      static_cast<double>(in_box.size()) / static_cast<double>(n_total);
  return true;
}

PrimResult Prim::Run(const FeatureMatrix& x,
                     const std::vector<double>& y) const {
  assert(x.num_rows() == y.size());
  PrimResult result;
  if (x.num_rows() == 0) return result;

  std::vector<size_t> active(x.num_rows());
  std::iota(active.begin(), active.end(), 0);
  const size_t n_total = x.num_rows();

  for (size_t b = 0; b < params_.max_boxes; ++b) {
    PrimBox box;
    if (!FindBox(x, y, active, n_total, &box, &result.peel_steps,
                 &result.paste_steps)) {
      break;
    }
    if (box.mean < params_.target_threshold) break;
    result.boxes.push_back(box);

    // Covering: drop the box's points and hunt again.
    const size_t d = x.num_features();
    std::erase_if(active, [&](size_t r) {
      for (size_t j = 0; j < d; ++j) {
        const double v = x.Get(r, j);
        if (v < box.region.lo(j) || v > box.region.hi(j)) return false;
      }
      return true;
    });
    if (active.size() <
        std::max<size_t>(2, static_cast<size_t>(params_.min_support *
                                                static_cast<double>(
                                                    n_total)))) {
      break;
    }
  }
  return result;
}

}  // namespace surf
