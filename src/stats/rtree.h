#ifndef SURF_STATS_RTREE_H_
#define SURF_STATS_RTREE_H_

#include <vector>

#include "geom/bounds.h"
#include "stats/evaluator.h"

namespace surf {

/// \brief Aggregate R-tree range evaluator (STR bulk-loaded).
///
/// The paper's related work (§VI) contrasts SuRF with spatial indexes —
/// Guttman R-trees and the aggregate R-trees used for top-k OLAP
/// (Mamoulis et al.). This evaluator is that substrate: leaves pack
/// spatially adjacent points via Sort-Tile-Recursive bulk loading, inner
/// nodes carry MBRs plus pre-aggregated statistics (count / sum / sum² /
/// label matches), and range queries prune by MBR exactly like the k-d
/// tree but with a fan-out > 2 (shallower trees, better cache behaviour
/// on large N).
class RTreeEvaluator : public RegionEvaluator {
 public:
  /// Builds over `data` (must outlive the evaluator). `fanout` children
  /// per node, `leaf_size` points per leaf.
  RTreeEvaluator(const Dataset* data, Statistic stat, size_t fanout = 16,
                 size_t leaf_size = 64);

  const Statistic& statistic() const override { return stat_; }

  size_t num_nodes() const { return nodes_.size(); }
  size_t height() const { return height_; }

 protected:
  double EvaluateImpl(const Region& region,
                      const CancelToken& cancel) const override;

 private:
  struct Node {
    // Children index range into nodes_ (inner) or row range into rows_
    // (leaf, children_begin == children_end).
    uint32_t children_begin = 0;
    uint32_t children_end = 0;
    uint32_t rows_begin = 0;
    uint32_t rows_end = 0;
    bool leaf = true;
    std::vector<double> lo, hi;  // MBR over region dims
    // Subtree aggregates.
    uint32_t count = 0;
    double sum = 0.0;
    double sum_sq = 0.0;
    uint32_t matches = 0;
  };

  /// STR: recursively sort-tile the row range into `fanout^level` groups.
  void BulkLoad();
  uint32_t BuildLeaves(std::vector<uint32_t>* leaf_ids);
  Node MakeParent(const std::vector<uint32_t>& children) const;
  void ComputeLeafAggregates(Node* node) const;
  void Query(uint32_t node_idx, const Region& region,
             StatisticAccumulator* acc) const;

  const Dataset* data_;
  Statistic stat_;
  size_t fanout_;
  size_t leaf_size_;
  size_t height_ = 0;
  std::vector<uint32_t> rows_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
};

}  // namespace surf

#endif  // SURF_STATS_RTREE_H_
