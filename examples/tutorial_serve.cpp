// Tutorial companion: the end-to-end walkthrough of docs/tutorial.md as
// one runnable program. Every numbered step below matches a section of
// the tutorial — keeping the docs' snippets compiling is this file's
// job (CI builds and runs it).
//
//   1. ingest a CSV dataset
//   2. generate a past-evaluation workload (and save/replay it)
//   3. train a surrogate and read its metrics
//   4. mine regions: threshold query and top-k query
//   5. stand up a MiningService and serve repeated queries
//   6. feed fresh evaluations back for a warm-start refresh
//
// Run:  ./build/example_tutorial_serve [--rows N]

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/surf.h"
#include "core/topk.h"
#include "serve/mining_service.h"
#include "util/cli.h"

using namespace surf;

namespace {

/// Writes a small CSV with a dense Gaussian pocket at (70, 30) over a
/// uniform background — the stand-in for "your data".
std::string WriteDemoCsv(size_t rows) {
  const std::string path = "/tmp/surf_tutorial_points.csv";
  std::ofstream os(path);
  os << "x,y\n";
  Rng rng(7);
  for (size_t i = 0; i < rows; ++i) {
    os << rng.Uniform(0.0, 100.0) << "," << rng.Uniform(0.0, 100.0) << "\n";
  }
  for (size_t i = 0; i < rows / 5; ++i) {
    os << 70.0 + 3.0 * rng.Gaussian() << "," << 30.0 + 3.0 * rng.Gaussian()
       << "\n";
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const size_t rows = static_cast<size_t>(flags.GetInt("rows", 20000));

  // ---------------------------------------------------- 1. ingest a CSV
  const std::string csv_path = WriteDemoCsv(rows);
  auto data = Dataset::LoadCsv(csv_path);
  if (!data.ok()) {
    std::fprintf(stderr, "load: %s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("1. ingested %zu rows x %zu cols from %s\n", data->num_rows(),
              data->num_cols(), csv_path.c_str());

  // A statistic task: COUNT over the (x, y) box columns.
  const Statistic statistic = Statistic::Count({0, 1});

  // ------------------------------- 2. generate (or replay) a workload
  // SuRF learns from past region evaluations. Without a real query log,
  // generate one: random regions labelled by an exact evaluator.
  const auto evaluator =
      MakeEvaluator(BackendKind::kGridIndex, &*data, statistic);
  WorkloadParams workload_params;
  workload_params.num_queries = 6000;
  const RegionWorkload workload = GenerateWorkload(
      *evaluator, data->ComputeBounds(statistic.region_cols),
      workload_params);
  std::printf("2. workload: %zu labelled region evaluations\n",
              workload.size());

  // Real past query logs round-trip through CSV the same way:
  const std::string log_path = "/tmp/surf_tutorial_workload.csv";
  if (auto st = SaveWorkload(workload, log_path); !st.ok()) {
    std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
    return 1;
  }
  auto replayed = LoadWorkload(log_path);
  if (!replayed.ok() || replayed->size() != workload.size()) {
    std::fprintf(stderr, "replay mismatch\n");
    return 1;
  }
  std::printf("   replayed %zu evaluations from %s\n", replayed->size(),
              log_path.c_str());

  // ------------------------------------------ 3. train the surrogate
  SurrogateTrainOptions train_options;
  train_options.gbrt.n_estimators = 100;
  auto surrogate = Surrogate::Train(workload, train_options);
  if (!surrogate.ok()) {
    std::fprintf(stderr, "train: %s\n",
                 surrogate.status().ToString().c_str());
    return 1;
  }
  std::printf("3. surrogate: train RMSE %.1f, test RMSE %.1f, %.2fs\n",
              surrogate->metrics().train_rmse,
              surrogate->metrics().test_rmse,
              surrogate->metrics().train_seconds);

  // -------------------------- 4. mine: threshold query + top-k query
  FinderConfig finder_config;
  finder_config.gso.max_iterations = 60;
  SurfFinder finder(surrogate->AsStatisticFn(), surrogate->space(),
                    finder_config);
  finder.SetBatchEstimate(surrogate->AsBatchStatisticFn());
  finder.SetValidator(evaluator.get());
  const FindResult found =
      finder.Find(2.0 * static_cast<double>(rows) / 10.0,
                  ThresholdDirection::kAbove);
  std::printf("4. threshold query: %zu regions, %.0f%% true compliance\n",
              found.regions.size(), 100.0 * found.report.true_compliance);

  TopKConfig topk_config;
  topk_config.k = 2;
  topk_config.gso.max_iterations = 60;
  TopKFinder topk(surrogate->AsStatisticFn(), surrogate->space(),
                  topk_config);
  topk.SetBatchEstimate(surrogate->AsBatchStatisticFn());
  const TopKResult ranked = topk.Find();
  std::printf("   top-k query: %zu ranked regions, best estimate %.0f\n",
              ranked.regions.size(),
              ranked.regions.empty() ? 0.0 : ranked.regions[0].statistic);

  // ------------------------------- 5. serve repeated queries
  // One-shot pipelines retrain per invocation. The MiningService trains
  // once per (dataset, statistic, workload recipe, model recipe) key and
  // shares the cached surrogate across requests.
  MiningService service;
  if (auto st = service.RegisterCsvDataset("points", csv_path); !st.ok()) {
    std::fprintf(stderr, "register: %s\n", st.ToString().c_str());
    return 1;
  }

  MineRequest request;
  request.dataset = "points";
  request.statistic = statistic;
  request.threshold = 2.0 * static_cast<double>(rows) / 10.0;
  request.workload = workload_params;
  request.surrogate = train_options;
  request.finder = finder_config;
  // Serving recipe: keep the cheap KDE-seeded initialization, skip the
  // per-iteration Eq. 8 guidance integrals.
  request.finder.use_kde_guidance = false;

  std::vector<MineRequest> batch(8, request);
  const std::vector<MineResponse> responses = service.MineBatch(batch);
  size_t hits = 0;
  for (const auto& response : responses) {
    if (!response.status.ok()) {
      std::fprintf(stderr, "serve: %s\n",
                   response.status.ToString().c_str());
      return 1;
    }
    if (response.cache_hit) ++hits;
  }
  std::printf("5. served %zu requests: %zu cache hits, surrogate trained "
              "on %zu evaluations (holdout RMSE %.1f)\n",
              responses.size(), hits,
              responses[0].provenance.training_set_size,
              responses[0].provenance.holdout_rmse);

  // ----------------------- 6. warm-start refresh from fresh traffic
  // New evaluations accumulate per cache key; past the retrain threshold
  // the entry re-boosts a copy and swaps it in while the old model keeps
  // serving.
  WorkloadParams fresh_params;
  fresh_params.num_queries = 600;  // default retrain threshold is 512
  fresh_params.seed = 99;
  const RegionWorkload fresh = GenerateWorkload(
      *evaluator, data->ComputeBounds(statistic.region_cols), fresh_params);
  if (auto st = service.AppendEvaluations(request, fresh); !st.ok()) {
    std::fprintf(stderr, "append: %s\n", st.ToString().c_str());
    return 1;
  }
  const MineResponse refreshed = service.Mine(request);
  std::printf("6. after warm start: %zu total evaluations, %zu warm "
              "starts declared in provenance\n",
              refreshed.provenance.training_set_size,
              refreshed.provenance.warm_starts);

  const bool ok = !found.regions.empty() && !ranked.regions.empty() &&
                  hits == responses.size() - 1 &&
                  refreshed.provenance.warm_starts == 1;
  std::printf("%s\n", ok ? "tutorial pipeline OK" : "tutorial pipeline FAILED");
  return ok ? 0 : 1;
}
