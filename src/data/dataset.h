#ifndef SURF_DATA_DATASET_H_
#define SURF_DATA_DATASET_H_

#include <string>
#include <vector>

#include "geom/bounds.h"
#include "util/rng.h"
#include "util/status.h"

namespace surf {

/// \brief In-memory column-major table of doubles — the library's
/// "back-end data system" substrate (paper Def. 1: a dataset B of N data
/// vectors).
///
/// Columns are named; a statistic task selects which columns span the
/// hyper-rectangle (the region dimensions) and, for aggregate statistics,
/// which column supplies the value being averaged/summed. Column-major
/// layout keeps the per-dimension scans of the range evaluators and index
/// builders cache-friendly.
class Dataset {
 public:
  Dataset() = default;

  /// Creates an empty dataset with the given column names.
  explicit Dataset(std::vector<std::string> column_names);

  size_t num_rows() const { return num_rows_; }
  size_t num_cols() const { return columns_.size(); }

  const std::vector<std::string>& column_names() const {
    return column_names_;
  }

  /// Index of a named column, or -1 if absent.
  int ColumnIndex(const std::string& name) const;

  /// Raw column storage (length num_rows()).
  const std::vector<double>& column(size_t i) const { return columns_[i]; }

  /// Cell accessors.
  double Get(size_t row, size_t col) const { return columns_[col][row]; }
  void Set(size_t row, size_t col, double v) { columns_[col][row] = v; }

  /// Appends one row; must match num_cols().
  void AddRow(const std::vector<double>& row);

  /// Reserves capacity in every column.
  void Reserve(size_t rows);

  /// Gathers one row into a vector (for generic point operations).
  std::vector<double> Row(size_t row) const;

  /// Bounding box over the selected columns.
  Bounds ComputeBounds(const std::vector<size_t>& cols) const;

  /// Uniform random sample without replacement of `n` rows (all rows when
  /// n >= num_rows()). Used to fit KDE priors on large datasets.
  Dataset Sample(size_t n, Rng* rng) const;

  /// Replicates rows until the dataset holds at least `target_rows`
  /// (used by scalability benches to inflate N without changing the data
  /// distribution's shape). Jitters replicated points by `jitter`.
  Dataset InflateTo(size_t target_rows, double jitter, Rng* rng) const;

  /// CSV round-trip (first line: header).
  Status SaveCsv(const std::string& path) const;
  static StatusOr<Dataset> LoadCsv(const std::string& path);

 private:
  std::vector<std::string> column_names_;
  std::vector<std::vector<double>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace surf

#endif  // SURF_DATA_DATASET_H_
