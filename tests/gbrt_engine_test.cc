// Tests for the parallel, cache-efficient GBRT engine: the contiguous
// binned layout, sibling histogram subtraction, the copy-free blocked
// prediction path, thread-count determinism, batched surrogate
// evaluation, and hardened model deserialization.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "accel/accel.h"
#include "core/surrogate.h"
#include "core/workload.h"
#include "geom/bounds.h"
#include "ml/binning.h"
#include "ml/gbrt.h"
#include "ml/matrix.h"
#include "ml/tree.h"
#include "opt/gso.h"
#include "opt/naive_search.h"
#include "opt/objective.h"
#include "util/rng.h"

namespace surf {
namespace {

/// Selects an accel backend via the SURF_ACCEL environment override (the
/// same path a user would take) and restores the previous state on exit.
class ScopedAccelEnv {
 public:
  explicit ScopedAccelEnv(AccelBackend backend)
      : active_(ActiveAccelBackend()) {
    const char* env = std::getenv("SURF_ACCEL");
    had_env_ = env != nullptr;
    if (had_env_) env_ = env;
    setenv("SURF_ACCEL", AccelBackendName(backend), 1);
    ReselectAccelFromEnv();
  }
  ~ScopedAccelEnv() {
    if (had_env_) {
      setenv("SURF_ACCEL", env_.c_str(), 1);
    } else {
      unsetenv("SURF_ACCEL");
    }
    SetActiveAccelBackend(active_);
  }

 private:
  AccelBackend active_;
  bool had_env_ = false;
  std::string env_;
};

/// Every backend the host can actually run, generic first.
std::vector<AccelBackend> SupportedBackends() {
  std::vector<AccelBackend> out;
  for (int b = 0; b < kNumAccelBackends; ++b) {
    const AccelBackend backend = static_cast<AccelBackend>(b);
    if (AccelSupported(backend)) out.push_back(backend);
  }
  return out;
}

double BumpyFn(const std::vector<double>& x) {
  double out = std::sin(5.0 * x[0]) + 0.5 * x[1];
  for (size_t j = 2; j < x.size(); ++j) out += 0.2 * x[j] * x[j];
  return out;
}

void MakeProblem(size_t n, size_t d, uint64_t seed, FeatureMatrix* x,
                 std::vector<double>* y) {
  Rng rng(seed);
  *x = FeatureMatrix(d);
  x->Reserve(n);
  y->clear();
  y->reserve(n);
  std::vector<double> row(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) row[j] = rng.Uniform();
    x->AddRow(row);
    y->push_back(BumpyFn(row));
  }
}

// ------------------------------------------------------------ BinnedMatrix

TEST(BinnedMatrixTest, MatchesLegacyNestedLayout) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeProblem(700, 3, 41, &x, &y);
  const FeatureBinner binner(x, 64);
  const BinnedMatrix flat = binner.Bin(x);
  const auto nested = binner.BinMatrix(x);

  ASSERT_EQ(flat.num_rows(), x.num_rows());
  ASSERT_EQ(flat.num_features(), x.num_features());
  uint32_t expected_offset = 0;
  for (size_t j = 0; j < x.num_features(); ++j) {
    EXPECT_EQ(flat.bin_offset(j), expected_offset);
    EXPECT_EQ(flat.num_bins(j), binner.num_bins(j));
    expected_offset += flat.num_bins(j);
    for (size_t r = 0; r < x.num_rows(); ++r) {
      ASSERT_EQ(flat.col(j)[r], nested[j][r]);
    }
  }
  EXPECT_EQ(flat.total_bins(), expected_offset);
}

// ------------------------------------------------- scalar vs blocked batch

TEST(GbrtEngineTest, ScalarPredictMatchesBlockedBatch) {
  for (const size_t depth : {2u, 5u, 8u}) {
    FeatureMatrix x;
    std::vector<double> y;
    MakeProblem(1500, 4, 42 + depth, &x, &y);
    GbrtParams params;
    params.n_estimators = 40;
    params.max_depth = depth;
    GradientBoostedTrees model(params);
    ASSERT_TRUE(model.Fit(x, y).ok());

    FeatureMatrix tx;
    std::vector<double> ty;
    MakeProblem(3000, 4, 142 + depth, &tx, &ty);
    const std::vector<double> batch = model.PredictBatch(tx);
    ASSERT_EQ(batch.size(), tx.num_rows());
    for (size_t r = 0; r < tx.num_rows(); ++r) {
      EXPECT_DOUBLE_EQ(batch[r], model.Predict(tx.Row(r)))
          << "row " << r << " depth " << depth;
    }
  }
}

// ------------------------------------------------- sibling subtraction

TEST(GbrtEngineTest, SiblingSubtractionMatchesDirectBuild) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeProblem(2500, 5, 43, &x, &y);

  GbrtParams direct;
  direct.n_estimators = 60;
  direct.max_depth = 7;
  direct.use_sibling_subtraction = false;
  GbrtParams subtract = direct;
  subtract.use_sibling_subtraction = true;

  GradientBoostedTrees a(direct), b(subtract);
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  ASSERT_EQ(a.num_trees(), b.num_trees());

  // Histogram subtraction changes only the floating-point rounding of the
  // per-bin sums (parent − small vs a fresh accumulation), so predictions
  // agree to ~1e-14 relative; anything beyond that would mean a split
  // actually flipped.
  const std::vector<double> pa = a.PredictBatch(x);
  const std::vector<double> pb = b.PredictBatch(x);
  for (size_t r = 0; r < x.num_rows(); ++r) {
    EXPECT_NEAR(pa[r], pb[r], 1e-9) << "row " << r;
  }
}

TEST(TreeTest, SubtractionAndDirectSplitsAgree) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeProblem(1200, 3, 44, &x, &y);
  std::vector<double> grad(y.size());
  for (size_t i = 0; i < y.size(); ++i) grad[i] = -y[i];
  std::vector<uint32_t> rows_a(y.size()), rows_b(y.size());
  for (size_t i = 0; i < y.size(); ++i) {
    rows_a[i] = static_cast<uint32_t>(i);
    rows_b[i] = static_cast<uint32_t>(i);
  }
  const FeatureBinner binner(x, 128);
  const BinnedMatrix binned = binner.Bin(x);

  TreeParams direct;
  direct.max_depth = 6;
  direct.use_sibling_subtraction = false;
  TreeParams subtract = direct;
  subtract.use_sibling_subtraction = true;

  RegressionTree ta, tb;
  ta.Fit(binned, binner, grad, {}, &rows_a, direct, nullptr);
  tb.Fit(binned, binner, grad, {}, &rows_b, subtract, nullptr);
  ASSERT_EQ(ta.num_nodes(), tb.num_nodes());
  EXPECT_EQ(ta.num_leaves(), tb.num_leaves());

  // Split decisions must be identical: same node layout, same split
  // features, same thresholds (thresholds are bin edges, so they match
  // exactly when the chosen bins match). Leaf values may differ in the
  // last ulps from the subtraction's rounding — compare those with a
  // tight tolerance via prediction instead.
  std::stringstream sa, sb;
  ta.Serialize(sa);
  tb.Serialize(sb);
  size_t na = 0, nb = 0;
  sa >> na;
  sb >> nb;
  ASSERT_EQ(na, nb);
  for (size_t i = 0; i < na; ++i) {
    long long la, ra, lb, rb;
    unsigned long long fa, fb;
    double tha, va, thb, vb;
    sa >> la >> ra >> fa >> tha >> va;
    sb >> lb >> rb >> fb >> thb >> vb;
    EXPECT_EQ(la, lb) << "node " << i;
    EXPECT_EQ(ra, rb) << "node " << i;
    EXPECT_EQ(fa, fb) << "node " << i;
    EXPECT_DOUBLE_EQ(tha, thb) << "node " << i;
  }

  Rng rng(45);
  for (int i = 0; i < 200; ++i) {
    const std::vector<double> p{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    EXPECT_NEAR(ta.Predict(p), tb.Predict(p), 1e-10);
  }
}

// ------------------------------------------------- thread-count determinism

TEST(GbrtEngineTest, BitIdenticalAcrossThreadCountsAndBackends) {
  FeatureMatrix x;
  std::vector<double> y;
  // Large enough that both the parallel histogram path (≥ 16384 rows per
  // node, see kMinParallelHistRows) and the parallel prediction path
  // (≥ 8192 rows) actually engage — smaller problems would compare the
  // serial path against itself.
  MakeProblem(20000, 5, 46, &x, &y);

  // Thread-count determinism must hold under every accel backend, and —
  // because the kernel layer is specified bit-identical — the outputs
  // must ALSO agree across backends, so everything compares against one
  // baseline.
  std::vector<std::vector<double>> outputs;
  std::vector<std::string> labels;
  for (const AccelBackend backend : SupportedBackends()) {
    ScopedAccelEnv accel(backend);
    for (const size_t threads : {1u, 2u, 8u}) {
      GbrtParams params;
      params.n_estimators = 30;
      params.max_depth = 6;
      params.num_threads = threads;
      params.seed = 7;
      GradientBoostedTrees model(params);
      ASSERT_TRUE(model.Fit(x, y).ok());
      outputs.push_back(model.PredictBatch(x));
      labels.push_back(std::string(AccelBackendName(backend)) + "/" +
                       std::to_string(threads) + "t");
    }
  }
  for (size_t t = 1; t < outputs.size(); ++t) {
    ASSERT_EQ(outputs[0].size(), outputs[t].size());
    for (size_t r = 0; r < outputs[0].size(); ++r) {
      // Bitwise equality, not tolerance: the parallel engine partitions
      // work without changing any reduction order, and the accel kernels
      // reproduce the canonical order on every backend.
      EXPECT_EQ(outputs[0][r], outputs[t][r])
          << labels[0] << " vs " << labels[t] << " row " << r;
    }
  }
}

TEST(GbrtEngineTest, SubsampledTrainingDeterministicAcrossThreads) {
  FeatureMatrix x;
  std::vector<double> y;
  // Above the parallel-histogram row threshold even after the 80% row
  // subsample, so the threaded build really runs.
  MakeProblem(24000, 3, 47, &x, &y);
  std::vector<std::vector<double>> outputs;
  std::vector<std::string> labels;
  for (const AccelBackend backend : SupportedBackends()) {
    ScopedAccelEnv accel(backend);
    for (const size_t threads : {1u, 8u}) {
      GbrtParams params;
      params.n_estimators = 25;
      params.subsample = 0.8;
      params.colsample = 0.7;
      params.early_stopping_rounds = 10;
      params.validation_fraction = 0.2;
      params.num_threads = threads;
      GradientBoostedTrees model(params);
      ASSERT_TRUE(model.Fit(x, y).ok());
      outputs.push_back(model.PredictBatch(x));
      labels.push_back(std::string(AccelBackendName(backend)) + "/" +
                       std::to_string(threads) + "t");
    }
  }
  for (size_t t = 1; t < outputs.size(); ++t) {
    for (size_t r = 0; r < outputs[0].size(); ++r) {
      EXPECT_EQ(outputs[0][r], outputs[t][r])
          << labels[0] << " vs " << labels[t] << " row " << r;
    }
  }
}

// ---------------------------------------------- hardened deserialization

StatusOr<RegressionTree> ParseTree(const std::string& text) {
  std::istringstream is(text);
  return RegressionTree::Deserialize(is);
}

TEST(TreeDeserializeTest, RejectsMalformedInput) {
  // Unreadable / negative / absurd node counts.
  EXPECT_FALSE(ParseTree("abc").ok());
  EXPECT_FALSE(ParseTree("-5").ok());
  EXPECT_FALSE(ParseTree("0").ok());
  EXPECT_FALSE(ParseTree("999999999999999").ok());
  // Truncated record.
  EXPECT_FALSE(ParseTree("1\n-1 -1 0").ok());
  // Child index out of range.
  EXPECT_FALSE(ParseTree("2\n5 1 0 0.5 0\n-1 -1 0 0 1.0").ok());
  // Half-leaf record (only one child missing).
  EXPECT_FALSE(ParseTree("2\n-1 1 0 0.5 0\n-1 -1 0 0 1.0").ok());
  // Shared child (node 1 referenced twice).
  EXPECT_FALSE(ParseTree("2\n1 1 0 0.5 0\n-1 -1 0 0 1.0").ok());
  // Self-cycle at the root.
  EXPECT_FALSE(ParseTree("2\n0 1 0 0.5 0\n-1 -1 0 0 1.0").ok());
  // Orphan node (root is a leaf but the file claims two nodes).
  EXPECT_FALSE(ParseTree("2\n-1 -1 0 0 1.0\n-1 -1 0 0 2.0").ok());
  // Non-finite threshold.
  EXPECT_FALSE(ParseTree("3\n1 2 0 nan 0\n-1 -1 0 0 1\n-1 -1 0 0 2").ok());
  // Feature index out of the serialized-format range.
  EXPECT_FALSE(
      ParseTree("3\n1 2 99999999 0.5 0\n-1 -1 0 0 1\n-1 -1 0 0 2").ok());
}

TEST(TreeDeserializeTest, SanitizesLeafFeatureIndices) {
  // The traversal reads x[feature] even at leaves (discarded by the NaN
  // self-loop compare), so a junk feature index on a leaf record must
  // not survive deserialization — it would read out of bounds at
  // predict time.
  const auto tree =
      ParseTree("3\n1 2 0 0.5 0\n-1 -1 9999 0 -3.0\n-1 -1 9999 0 4.0");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->MaxFeatureIndex(), 0u);
  EXPECT_DOUBLE_EQ(tree->Predict({0.2}), -3.0);
  EXPECT_DOUBLE_EQ(tree->Predict({0.8}), 4.0);
}

TEST(TreeDeserializeTest, AcceptsValidTreeAndNormalizesLayout) {
  // A valid 3-node tree written right-child-heavy; traversal must agree
  // with the record semantics after the DFS re-layout.
  const auto tree = ParseTree("3\n1 2 0 0.5 0\n-1 -1 0 0 -3.0\n-1 -1 0 0 4.0");
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->num_nodes(), 3u);
  EXPECT_DOUBLE_EQ(tree->Predict({0.2}), -3.0);
  EXPECT_DOUBLE_EQ(tree->Predict({0.8}), 4.0);
}

TEST(GbrtLoadTest, RejectsMalformedModelFiles) {
  const std::string path = "/tmp/surf_gbrt_engine_bad.model";
  const auto write_and_check = [&](const std::string& body) {
    {
      std::ofstream os(path);
      os << body;
    }
    const auto loaded = GradientBoostedTrees::Load(path);
    EXPECT_FALSE(loaded.ok()) << body;
  };
  // Negative tree count.
  write_and_check("surf-gbrt-v1\n2 0.0 0.1 -3\n");
  // Negative / zero feature count.
  write_and_check("surf-gbrt-v1\n-2 0.0 0.1 1\n1\n-1 -1 0 0 1.0\n");
  write_and_check("surf-gbrt-v1\n0 0.0 0.1 1\n1\n-1 -1 0 0 1.0\n");
  // Absurd tree count.
  write_and_check("surf-gbrt-v1\n2 0.0 0.1 99999999999\n");
  // Non-finite base score.
  write_and_check("surf-gbrt-v1\n2 inf 0.1 1\n1\n-1 -1 0 0 1.0\n");
  // Tree body with a split feature beyond the declared width.
  write_and_check(
      "surf-gbrt-v1\n2 0.0 0.1 1\n3\n1 2 7 0.5 0\n-1 -1 0 0 1\n-1 -1 0 0 2\n");
  // Truncated: fewer trees than declared.
  write_and_check("surf-gbrt-v1\n2 0.0 0.1 2\n1\n-1 -1 0 0 1.0\n");
  std::remove(path.c_str());
}

// ------------------------------------------------- batched evaluation

RegionWorkload MakeWorkload(size_t n, uint64_t seed) {
  RegionWorkload workload;
  const Bounds domain({0.0, 0.0}, {1.0, 1.0});
  workload.space = RegionSolutionSpace::ForBounds(domain, 0.01, 0.2);
  workload.features = FeatureMatrix(4);
  workload.features.Reserve(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const Region region = workload.space.Sample(&rng);
    workload.features.AddRow(RegionFeatures(region));
    workload.targets.push_back(BumpyFn(RegionFeatures(region)));
  }
  return workload;
}

TEST(SurrogateBatchTest, EvaluateManyMatchesPredict) {
  const RegionWorkload workload = MakeWorkload(2000, 48);
  SurrogateTrainOptions options;
  options.gbrt.n_estimators = 40;
  auto surrogate = Surrogate::Train(workload, options);
  ASSERT_TRUE(surrogate.ok());

  Rng rng(49);
  std::vector<Region> probes;
  for (int i = 0; i < 300; ++i) probes.push_back(workload.space.Sample(&rng));

  const std::vector<double> batch = surrogate->EvaluateMany(probes);
  ASSERT_EQ(batch.size(), probes.size());
  const auto batch_fn = surrogate->AsBatchStatisticFn();
  const std::vector<double> batch2 = batch_fn(probes);
  for (size_t i = 0; i < probes.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], surrogate->Predict(probes[i]));
    EXPECT_DOUBLE_EQ(batch2[i], batch[i]);
  }
}

TEST(ObjectiveBatchTest, EvaluateManyMatchesEvaluate) {
  const StatisticFn statistic = [](const Region& region) {
    return 10.0 * region.half_length(0) + region.center(1);
  };
  const BatchStatisticFn batch_statistic =
      [&statistic](const std::vector<Region>& regions) {
        std::vector<double> out;
        out.reserve(regions.size());
        for (const auto& region : regions) out.push_back(statistic(region));
        return out;
      };
  ObjectiveConfig config;
  config.threshold = 0.5;
  const RegionObjective scalar(statistic, config);
  const RegionObjective batched(statistic, batch_statistic, config);

  Rng rng(50);
  const RegionSolutionSpace space = RegionSolutionSpace::ForBounds(
      Bounds({0.0, 0.0}, {1.0, 1.0}), 0.01, 0.3);
  std::vector<Region> regions;
  for (int i = 0; i < 200; ++i) regions.push_back(space.Sample(&rng));

  std::vector<double> stats;
  const auto scalar_evals = scalar.EvaluateMany(regions, &stats);
  const auto batch_evals = batched.EvaluateMany(regions);
  for (size_t i = 0; i < regions.size(); ++i) {
    const FitnessValue direct = scalar.Evaluate(regions[i]);
    EXPECT_EQ(scalar_evals[i].valid, direct.valid);
    EXPECT_DOUBLE_EQ(scalar_evals[i].value, direct.value);
    EXPECT_EQ(batch_evals[i].valid, direct.valid);
    EXPECT_DOUBLE_EQ(batch_evals[i].value, direct.value);
    EXPECT_DOUBLE_EQ(stats[i], statistic(regions[i]));
  }
}

TEST(GsoBatchTest, BatchAndScalarPathsProduceIdenticalSwarms) {
  const StatisticFn statistic = [](const Region& region) {
    const double dx = region.center(0) - 0.5;
    return 2.0 - 10.0 * dx * dx;
  };
  ObjectiveConfig config;
  config.threshold = 0.5;
  const RegionObjective objective(statistic, config);
  const RegionSolutionSpace space =
      RegionSolutionSpace::ForBounds(Bounds({0.0}, {1.0}), 0.05, 0.3);

  GsoParams params;
  params.num_glowworms = 40;
  params.max_iterations = 20;
  const GlowwormSwarmOptimizer gso(params);
  const GsoResult scalar = gso.Optimize(objective.AsFitnessFn(), space);
  const GsoResult batch = gso.Optimize(objective.AsBatchFitnessFn(), space);

  ASSERT_EQ(scalar.particles.size(), batch.particles.size());
  EXPECT_EQ(scalar.iterations_run, batch.iterations_run);
  EXPECT_EQ(scalar.objective_evaluations, batch.objective_evaluations);
  for (size_t i = 0; i < scalar.particles.size(); ++i) {
    EXPECT_EQ(scalar.valid[i], batch.valid[i]);
    EXPECT_DOUBLE_EQ(scalar.fitness[i], batch.fitness[i]);
    for (size_t j = 0; j < scalar.particles[i].dims(); ++j) {
      EXPECT_DOUBLE_EQ(scalar.particles[i].center(j),
                       batch.particles[i].center(j));
    }
  }
}

TEST(NaiveSearchBatchTest, ChunkedEvaluationKeepsBudgetSemantics) {
  const StatisticFn statistic = [](const Region& region) {
    return region.center(0) + region.center(1);
  };
  ObjectiveConfig config;
  config.threshold = 1.0;
  const RegionObjective objective(statistic, config);
  const RegionSolutionSpace space = RegionSolutionSpace::ForBounds(
      Bounds({0.0, 0.0}, {1.0, 1.0}), 0.05, 0.3);

  NaiveSearchParams params;
  params.centers_per_dim = 10;
  params.sizes_per_dim = 10;  // (10·10)^2 = 10000 candidates
  params.max_evaluations = 1000;
  const NaiveSearchResult capped = NaiveSearch(params).Run(objective, space);
  EXPECT_EQ(capped.examined, 1000u);
  EXPECT_TRUE(capped.timed_out);

  params.max_evaluations = 0;
  const NaiveSearchResult full = NaiveSearch(params).Run(objective, space);
  EXPECT_EQ(full.examined, 10000u);
  EXPECT_FALSE(full.timed_out);
  EXPECT_FALSE(full.viable.empty());
}

}  // namespace
}  // namespace surf
