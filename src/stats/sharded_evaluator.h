#ifndef SURF_STATS_SHARDED_EVALUATOR_H_
#define SURF_STATS_SHARDED_EVALUATOR_H_

/// \file
/// \brief Shard-parallel exact back-end over a ShardedDataset.

#include <atomic>
#include <memory>

#include "data/sharded.h"
#include "stats/evaluator.h"
#include "util/thread_pool.h"

namespace surf {

/// \brief Exact evaluator that computes f over row-range shards with
/// per-shard partial accumulators merged in fixed shard order.
///
/// Per query, every shard is classified against the box using its
/// column summaries:
///
///  - disjoint on any region column → pruned outright;
///  - fully covered on every region column and decomposable statistic →
///    answered from the pre-aggregated summary in O(1);
///  - otherwise → scanned with a branchless per-column membership mask
///    over the shard's contiguous column chunks, skipping the mask pass
///    for columns the shard is already inside.
///
/// With range partitioning on a region column (ShardingOptions.order_by)
/// most shards land in the first two classes, which is where the
/// speedup on one core comes from; with more cores the boundary-shard
/// scans additionally run in parallel on the evaluator's own pool.
///
/// Determinism and bit-identity:
///  - partial accumulators are merged in ascending shard index, so the
///    result is independent of worker scheduling (identical at 1, 2, or
///    8 threads);
///  - rows inside a shard accumulate in shard row order, so with a
///    single shard and natural row order every statistic reproduces the
///    legacy ScanEvaluator bit-for-bit;
///  - the integer-backed statistics (count, label ratio — and any sum
///    whose values are exactly representable) are bit-identical to the
///    unsharded scan at every shard count; re-partitioned floating-point
///    sums agree to rounding only, which is why the default shard count
///    everywhere is 1.
///
/// Cancellation is polled once per shard batch: a fired token skips all
/// remaining shard scans and the (meaningless) partial result is
/// discarded by the caller, per the RegionEvaluator contract.
class ShardedScanEvaluator : public RegionEvaluator {
 public:
  /// Takes ownership of the shard chunks. `num_threads` sizes the
  /// internal scan pool: 0 = min(shards, hardware); 1 = inline
  /// single-threaded evaluation (no pool). The pool is private to this
  /// evaluator, so it composes with callers that already run on a
  /// shared pool (MiningService workers) without nesting deadlocks.
  ShardedScanEvaluator(ShardedDataset data, Statistic stat,
                       size_t num_threads = 0);

  const Statistic& statistic() const override { return stat_; }

  size_t num_shards() const { return data_.num_shards(); }
  size_t num_threads() const { return pool_ ? pool_->num_threads() : 1; }
  const ShardedDataset& data() const { return data_; }

  /// Telemetry (since construction, across all queries): shards skipped
  /// as disjoint, answered from summaries, and actually scanned.
  uint64_t shards_pruned() const { return pruned_.load(); }
  uint64_t shards_block_merged() const { return block_merged_.load(); }
  uint64_t shards_scanned() const { return scanned_.load(); }

  /// \brief Evaluates one shard of one region into `acc` (a fresh
  /// accumulator over statistic()). This is the distributed worker's
  /// entry point: a remote worker computes the per-shard partials it was
  /// assigned and ships the raw accumulator state back, so the
  /// coordinator's ascending-shard Merge fold replays exactly the fold
  /// EvaluateImpl performs in process — bit for bit.
  void EvalShardPartial(size_t shard_index, const Region& region,
                        StatisticAccumulator* acc) const {
    EvalShard(shard_index, region, acc);
  }

  /// \brief Process-wide totals across every evaluator instance (live or
  /// destroyed), so /metrics and /v1/cache/stats can export the
  /// prune/block/scan split without walking the surrogate cache.
  struct GlobalTelemetry {
    uint64_t pruned = 0;
    uint64_t block_merged = 0;
    uint64_t scanned = 0;
  };
  static GlobalTelemetry global_telemetry();

 protected:
  double EvaluateImpl(const Region& region,
                      const CancelToken& cancel) const override;

 private:
  /// Evaluates one shard into `acc` (a fresh per-shard partial).
  void EvalShard(size_t shard_index, const Region& region,
                 StatisticAccumulator* acc) const;

  ShardedDataset data_;
  Statistic stat_;
  /// Per-shard label-match counts (pre-aggregated at construction so
  /// fully-covered shards stay O(1) for kLabelRatio too).
  std::vector<size_t> shard_matches_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::atomic<uint64_t> pruned_{0};
  mutable std::atomic<uint64_t> block_merged_{0};
  mutable std::atomic<uint64_t> scanned_{0};
};

}  // namespace surf

#endif  // SURF_STATS_SHARDED_EVALUATOR_H_
