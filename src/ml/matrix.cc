#include "ml/matrix.h"

namespace surf {

FeatureMatrix FeatureMatrix::Gather(const std::vector<size_t>& rows) const {
  FeatureMatrix out(num_features());
  out.Reserve(rows.size());
  std::vector<double> row(num_features());
  for (size_t r : rows) {
    for (size_t j = 0; j < num_features(); ++j) row[j] = Get(r, j);
    out.AddRow(row);
  }
  return out;
}

}  // namespace surf
