#ifndef SURF_ML_KNN_H_
#define SURF_ML_KNN_H_

#include <string>
#include <vector>

#include "ml/regressor.h"

namespace surf {

/// \brief k-nearest-neighbour regressor (uniform or distance weighting) —
/// the second alternative surrogate class for the ablation benches.
///
/// Features are standardized at fit time so the L2 metric is scale-free.
/// Lookup is a brute-force partial sort, fine for the workloads SuRF
/// trains on (10³–10⁵ past evaluations).
class KnnRegressor : public Regressor {
 public:
  explicit KnnRegressor(size_t k = 8, bool distance_weighted = true)
      : k_(k), distance_weighted_(distance_weighted) {}

  Status Fit(const FeatureMatrix& x, const std::vector<double>& y) override;

  double Predict(const std::vector<double>& x) const override;

  bool trained() const override { return trained_; }
  std::string Name() const override { return "knn"; }

  size_t k() const { return k_; }

 private:
  size_t k_;
  bool distance_weighted_;
  FeatureMatrix train_x_;           // standardized
  std::vector<double> train_y_;
  std::vector<double> mean_, scale_;
  bool trained_ = false;
};

}  // namespace surf

#endif  // SURF_ML_KNN_H_
