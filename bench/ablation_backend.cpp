// Ablation: exact back-end choice for serving true-statistic evaluations
// — full scan vs uniform grid index vs k-d tree.
//
// The back-end determines the cost of (a) labelling the training workload
// and (b) the f+GlowWorm comparison arm. SuRF itself never touches it
// after training — which is the point of the paper.

#include <cstdio>

#include "bench_common.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const size_t n = static_cast<size_t>(
      flags.GetInt("points", full ? 2000000 : 200000));
  const size_t queries = static_cast<size_t>(
      flags.GetInt("queries", full ? 5000 : 1000));

  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 44;
  SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  Rng inflate_rng(9);
  ds.data = ds.data.InflateTo(n, 0.002, &inflate_rng);
  const Statistic stat = bench::StatisticFor(ds);
  const Bounds domain = ds.data.ComputeBounds(ds.region_cols);

  std::printf("Ablation — exact back-end cost on N = %zu points, %zu "
              "random region queries\n\n",
              n, queries);
  TablePrinter table({"backend", "build (s)", "label workload (s)",
                      "queries/s"});

  for (BackendKind kind :
       {BackendKind::kScan, BackendKind::kGridIndex, BackendKind::kKdTree,
        BackendKind::kRTree}) {
    const char* name = kind == BackendKind::kScan        ? "scan"
                       : kind == BackendKind::kGridIndex ? "grid-index"
                       : kind == BackendKind::kKdTree    ? "kd-tree"
                                                         : "r-tree";
    Stopwatch build_timer;
    auto evaluator = MakeEvaluator(kind, &ds.data, stat);
    const double build_secs = build_timer.ElapsedSeconds();

    WorkloadParams wparams;
    wparams.num_queries = queries;
    wparams.seed = 5;
    Stopwatch label_timer;
    const RegionWorkload workload =
        GenerateWorkload(*evaluator, domain, wparams);
    const double label_secs = label_timer.ElapsedSeconds();
    (void)workload;

    table.AddRow({name, FormatDouble(build_secs, 3),
                  FormatDouble(label_secs, 3),
                  FormatDouble(static_cast<double>(queries) / label_secs,
                               0)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected: index back-ends build in O(N) once and then "
              "serve queries 10-100x faster than the per-query scan — "
              "they accelerate workload labelling, not SuRF's mining, "
              "which is data-free by construction.\n");
  return 0;
}
