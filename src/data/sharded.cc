#include "data/sharded.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace surf {

ShardedDataset ShardedDataset::Partition(const Dataset& data,
                                         const ShardingOptions& options) {
  ShardedDataset sharded;
  sharded.options_ = options;
  sharded.options_.num_shards = std::clamp<size_t>(
      options.num_shards, 1, ShardingOptions::kMaxShards);
  sharded.column_names_ = data.column_names();
  sharded.num_rows_ = data.num_rows();

  const size_t n = data.num_rows();
  const size_t num_cols = data.num_cols();
  const size_t num_shards = sharded.options_.num_shards;

  std::vector<size_t> cols = options.columns;
  if (cols.empty()) {
    cols.resize(num_cols);
    std::iota(cols.begin(), cols.end(), 0);
  } else {
    // Dedupe: a value column that is also a region column must only be
    // materialized (and summarized) once.
    std::sort(cols.begin(), cols.end());
    cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  }
  for ([[maybe_unused]] size_t c : cols) assert(c < num_cols);

  // Row visit order: natural, or a stable range partition on one column.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (options.order_by >= 0) {
    assert(static_cast<size_t>(options.order_by) < num_cols);
    const std::vector<double>& key =
        data.column(static_cast<size_t>(options.order_by));
    // NaN keys sort after everything as one equivalence class — a bare
    // `a < b` is not a strict weak order once NaN is involved (UB in
    // stable_sort).
    std::stable_sort(order.begin(), order.end(),
                     [&key](uint32_t a, uint32_t b) {
                       if (std::isnan(key[a])) return false;
                       if (std::isnan(key[b])) return true;
                       return key[a] < key[b];
                     });
  }

  // Balanced contiguous ranges: the first (n % num_shards) shards take
  // one extra row. Shards past the row count stay empty.
  sharded.shards_.resize(num_shards);
  const size_t base = n / num_shards;
  const size_t extra = n % num_shards;
  size_t begin = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    const size_t rows = base + (s < extra ? 1 : 0);
    DatasetShard& shard = sharded.shards_[s];
    shard.num_rows_ = rows;
    shard.columns_.resize(num_cols);
    shard.summaries_.resize(num_cols);
    for (size_t c : cols) {
      const std::vector<double>& src = data.column(c);
      std::vector<double>& dst = shard.columns_[c];
      ColumnSummary& summary = shard.summaries_[c];
      dst.reserve(rows);
      for (size_t i = begin; i < begin + rows; ++i) {
        const double v = src[order[i]];
        dst.push_back(v);
        summary.Observe(v);
      }
    }
    begin += rows;
  }
  return sharded;
}

ColumnSummary ShardedDataset::TotalSummary(size_t c) const {
  ColumnSummary total;
  for (const DatasetShard& shard : shards_) {
    total.Merge(shard.summaries_[c]);
  }
  return total;
}

}  // namespace surf
