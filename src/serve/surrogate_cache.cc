#include "serve/surrogate_cache.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "util/failpoint.h"

namespace surf {

// ---------------------------------------------------------------- entry

SurrogateSnapshot CachedSurrogate::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  SurrogateSnapshot snap;
  snap.surrogate = model_;
  snap.kde = kde_;
  snap.evaluator = evaluator_;
  snap.space = space_;
  snap.provenance = provenance_;
  return snap;
}

SurrogateProvenance CachedSurrogate::provenance() const {
  std::lock_guard<std::mutex> lock(mu_);
  return provenance_;
}

void CachedSurrogate::Publish(TrainedSurrogate trained,
                              uint64_t dataset_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  space_ = trained.surrogate.space();
  provenance_.dataset_fingerprint = dataset_fingerprint;
  provenance_.training_set_size =
      trained.surrogate.metrics().num_train_examples;
  provenance_.holdout_rmse = trained.surrogate.metrics().test_rmse;
  provenance_.train_seconds = trained.surrogate.metrics().train_seconds;
  provenance_.cv_rmse = trained.cv_rmse;
  model_ = std::make_shared<const Surrogate>(std::move(trained.surrogate));
  kde_ = std::move(trained.kde);
  evaluator_ = std::move(trained.evaluator);
  state_ = State::kReady;
  cv_.notify_all();
}

void CachedSurrogate::Fail(Status status) {
  FailWithFallback(std::move(status), nullptr);
}

void CachedSurrogate::FailWithFallback(
    Status status, std::shared_ptr<CachedSurrogate> fallback) {
  std::lock_guard<std::mutex> lock(mu_);
  status_ = std::move(status);
  fallback_ = std::move(fallback);
  state_ = State::kFailed;
  cv_.notify_all();
}

std::shared_ptr<CachedSurrogate> CachedSurrogate::fallback() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fallback_;
}

void CachedSurrogate::MarkDegraded(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  provenance_.degraded = true;
  provenance_.degraded_reason = reason;
}

Status CachedSurrogate::WaitReady() const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return state_ != State::kTraining; });
  return state_ == State::kReady ? Status::OK() : status_;
}

Status CachedSurrogate::Append(const RegionWorkload& fresh) {
  if (fresh.size() == 0) {
    return Status::InvalidArgument("empty incremental workload");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ != State::kReady) {
      return Status::FailedPrecondition("cache entry not ready");
    }
    // Reject shape mismatches up front: once a mismatched batch sat in
    // pending_, every later (correct) append would fail MergeWorkloads
    // and the entry could never warm-start again.
    if (fresh.features.num_features() != 2 * model_->dims()) {
      return Status::InvalidArgument(
          "incremental workload feature width mismatch");
    }
    if (!has_pending_) {
      pending_ = fresh;
      has_pending_ = true;
    } else {
      SURF_RETURN_IF_ERROR(MergeWorkloads(&pending_, fresh));
    }
    provenance_.pending_examples = pending_.size();
  }

  // Retrain loop: claim a batch whenever the threshold is crossed and no
  // other thread is already retraining. Looping (rather than a single
  // pass) covers appends that crossed the threshold again while this
  // thread's warm start was in flight — without it those evaluations
  // would sit pending until the *next* append arrived.
  for (;;) {
    std::shared_ptr<const Surrogate> base;
    RegionWorkload batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_.size() < retrain_threshold_ || retraining_) {
        return Status::OK();
      }
      retraining_ = true;
      batch = std::move(pending_);
      pending_ = RegionWorkload{};
      has_pending_ = false;
      provenance_.pending_examples = 0;
      base = model_;
    }

    // Warm start outside the lock — Snapshot() keeps serving `base`.
    auto warmed = base->WarmStarted(batch, warm_start_trees_);

    std::lock_guard<std::mutex> lock(mu_);
    retraining_ = false;
    if (!warmed.ok()) {
      // Put the batch back so the evaluations are not lost; the next
      // append past the threshold retries.
      if (!has_pending_) {
        pending_ = std::move(batch);
        has_pending_ = true;
      } else {
        (void)MergeWorkloads(&pending_, batch);
      }
      provenance_.pending_examples = pending_.size();
      return warmed.status();
    }
    model_ = std::make_shared<const Surrogate>(std::move(warmed).value());
    provenance_.warm_starts += 1;
    provenance_.training_set_size = model_->metrics().num_train_examples;
    provenance_.train_seconds = model_->metrics().train_seconds;
    provenance_.holdout_rmse = model_->metrics().test_rmse;
  }
}

// ---------------------------------------------------------------- cache

void SurrogateCache::Touch(const SurrogateKey& key, Slot* slot) {
  lru_.erase(slot->lru_pos);
  lru_.push_front(key);
  slot->lru_pos = lru_.begin();
}

void SurrogateCache::EnforceCapacity() {
  // Walk from the LRU tail, skipping in-flight entries.
  auto it = lru_.end();
  while (map_.size() > options_.capacity && it != lru_.begin()) {
    --it;
    auto found = map_.find(*it);
    if (found == map_.end()) {
      it = lru_.erase(it);
      continue;
    }
    {
      std::lock_guard<std::mutex> entry_lock(found->second.entry->mu_);
      if (found->second.entry->state_ == CachedSurrogate::State::kTraining) {
        continue;
      }
    }
    map_.erase(found);
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

StatusOr<std::shared_ptr<CachedSurrogate>> SurrogateCache::GetOrTrain(
    const SurrogateKey& key, const Factory& factory, bool* was_hit,
    CancelToken caller) {
  for (;;) {
    std::shared_ptr<CachedSurrogate> entry;
    bool train_here = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto now = std::chrono::steady_clock::now();
      auto it = map_.find(key);
      if (it != map_.end()) {
        Slot& slot = it->second;
        bool training = false;
        bool failed = false;
        bool stale = false;
        {
          std::lock_guard<std::mutex> entry_lock(slot.entry->mu_);
          failed = slot.entry->state_ == CachedSurrogate::State::kFailed;
          training = slot.entry->state_ == CachedSurrogate::State::kTraining;
          if (!failed && !training &&
              std::isfinite(options_.max_age_seconds)) {
            const double age =
                std::chrono::duration<double>(now - slot.entry->created_)
                    .count();
            stale = age > options_.max_age_seconds;
          }
        }
        if (failed) {
          // Defensive: leaders resolve their slot under mu_ *before*
          // failing the entry, so a failed entry should never be
          // resident. Drop it if one ever is.
          lru_.erase(slot.lru_pos);
          map_.erase(it);
        } else if (training && slot.stale != nullptr &&
                   options_.stale_while_revalidate) {
          // Stale-while-revalidate: a retrain for this key is in
          // flight — answer from the previous model, labelled
          // degraded, instead of blocking this caller on the fit.
          slot.stale->MarkDegraded(
              "stale-while-revalidate: retrain in flight");
          Touch(key, &slot);
          ++stats_.hits;
          ++stats_.degraded_serves;
          if (was_hit != nullptr) *was_hit = true;
          return slot.stale;
        } else if (!stale) {
          Touch(key, &slot);
          ++stats_.hits;
          if (was_hit != nullptr) *was_hit = true;
          entry = slot.entry;
        } else {
          ++stats_.stale_evictions;
          if (options_.stale_while_revalidate) {
            // Keep the outgoing model: served degraded while the
            // revalidation runs, reinstated should it fail.
            slot.stale = std::move(slot.entry);
            slot.entry = nullptr;
          } else {
            lru_.erase(slot.lru_pos);
            map_.erase(it);
          }
        }
      }
      if (entry == nullptr) {
        // About to train. Fail-fast gates first: an open breaker or a
        // fresh remembered failure refuses the fit — degrading to the
        // stale model when one survived the stash above.
        auto slot_it = map_.find(key);
        auto fs = failures_.find(key);
        if (fs != failures_.end()) {
          const bool breaker_open = fs->second.open_until > now;
          const bool negative_fresh =
              options_.negative_ttl_seconds > 0.0 &&
              std::chrono::duration<double>(now - fs->second.last_failure)
                      .count() < options_.negative_ttl_seconds;
          if (breaker_open || negative_fresh) {
            if (slot_it != map_.end() && slot_it->second.stale != nullptr) {
              auto stale = std::move(slot_it->second.stale);
              slot_it->second.stale = nullptr;
              stale->MarkDegraded((breaker_open ? "circuit breaker open: "
                                                : "negative cache: ") +
                                  fs->second.last_status.message());
              slot_it->second.entry = stale;
              Touch(key, &slot_it->second);
              ++stats_.hits;
              ++stats_.degraded_serves;
              if (was_hit != nullptr) *was_hit = true;
              return stale;
            }
            if (breaker_open) {
              ++stats_.breaker_rejections;
              const double remain =
                  std::chrono::duration<double>(fs->second.open_until - now)
                      .count();
              return Status::Unavailable(
                  "circuit breaker open after " +
                  std::to_string(fs->second.consecutive) +
                  " consecutive training failures (retry in ~" +
                  std::to_string(static_cast<int>(remain) + 1) +
                  "s): " + fs->second.last_status.message());
            }
            ++stats_.negative_hits;
            return fs->second.last_status;
          }
        }
        // Become the training leader for this key.
        entry = std::shared_ptr<CachedSurrogate>(new CachedSurrogate(
            options_.retrain_threshold, options_.warm_start_trees));
        if (slot_it != map_.end()) {
          slot_it->second.entry = entry;
          Touch(key, &slot_it->second);
        } else {
          lru_.push_front(key);
          map_.emplace(key, Slot{entry, lru_.begin(), nullptr});
        }
        ++stats_.misses;
        if (was_hit != nullptr) *was_hit = false;
        train_here = true;
        EnforceCapacity();
      }
    }

    if (train_here) {
      auto trained = factory();
      Status failure = Status::OK();
      if (trained.ok()) {
        // The insert itself can be failed deterministically in chaos
        // runs; treat that exactly like a failed fit.
        failure = MaybeFailpoint("cache.insert");
      } else {
        failure = trained.status();
      }
      if (failure.ok()) {
        entry->Publish(std::move(trained).value(), key.dataset);
        std::lock_guard<std::mutex> lock(mu_);
        failures_.erase(key);
        auto it = map_.find(key);
        if (it != map_.end() && it->second.entry == entry) {
          it->second.stale = nullptr;  // fresh model supersedes the stale one
        }
      } else {
        // Resolve the slot *before* waking waiters, so a failed entry
        // is never observable in the map. Cancellation is the caller's
        // choice, not a service fault: it neither counts against the
        // breaker nor degrades the stale model (a live waiter takes
        // over and retrains instead).
        const bool cancelled = failure.code() == StatusCode::kCancelled;
        std::shared_ptr<CachedSurrogate> fallback;
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!cancelled) RecordFailureLocked(key, failure);
          auto it = map_.find(key);
          if (it != map_.end() && it->second.entry == entry) {
            if (it->second.stale != nullptr) {
              auto stale = std::move(it->second.stale);
              it->second.stale = nullptr;
              if (!cancelled) {
                stale->MarkDegraded("training failed: " + failure.message());
                fallback = stale;
                ++stats_.degraded_serves;
              }
              it->second.entry = std::move(stale);
            } else {
              lru_.erase(it->second.lru_pos);
              map_.erase(it);
            }
          }
        }
        entry->FailWithFallback(failure, fallback);
        // Stale-while-revalidate fallback: the leader answers from the
        // degraded stale model rather than surfacing the error.
        if (fallback != nullptr) return fallback;
        return failure;
      }
    }

    const Status ready = entry->WaitReady();
    if (ready.ok()) return entry;
    // Degraded fallback attached by the leader: waiters answer from the
    // stale model instead of the error too.
    if (auto fallback = entry->fallback(); fallback != nullptr) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.degraded_serves;
      return fallback;
    }
    // A cancelled *leader* must not strand its waiters: the failed entry
    // is no longer resident (the leader resolved the slot), so a waiter
    // whose own token is still live loops and retrains — one retry wins
    // the new slot and becomes leader, the rest join its in-flight fit.
    // Waiters that were themselves cancelled (and leaders, whose own
    // factory produced the status) propagate Cancelled.
    if (!train_here && ready.code() == StatusCode::kCancelled &&
        !caller.cancelled()) {
      continue;
    }
    return ready;
  }  // for (;;)
}

void SurrogateCache::RecordFailureLocked(const SurrogateKey& key,
                                         const Status& status) {
  ++stats_.training_failures;
  const auto now = std::chrono::steady_clock::now();
  FailureState& fs = failures_[key];
  ++fs.consecutive;
  fs.last_failure = now;
  fs.last_status = status;
  if (options_.breaker_failure_threshold > 0 &&
      fs.consecutive >= options_.breaker_failure_threshold) {
    fs.open_until =
        now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(options_.breaker_open_seconds));
  }
  // Bound the bookkeeping: forget long-quiet keys (nothing refreshed
  // their failure in minutes and their breaker is closed).
  if (failures_.size() > 4 * options_.capacity + 16) {
    for (auto it = failures_.begin(); it != failures_.end();) {
      const double age =
          std::chrono::duration<double>(now - it->second.last_failure).count();
      if (age > 300.0 && it->second.open_until <= now && it->first != key) {
        it = failures_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

int SurrogateCache::RetryAfterSeconds(const SurrogateKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = failures_.find(key);
  if (it == failures_.end()) return 1;
  const auto now = std::chrono::steady_clock::now();
  double remain = 0.0;
  if (it->second.open_until > now) {
    remain =
        std::chrono::duration<double>(it->second.open_until - now).count();
  } else if (options_.negative_ttl_seconds > 0.0) {
    remain = options_.negative_ttl_seconds -
             std::chrono::duration<double>(now - it->second.last_failure)
                 .count();
  }
  return std::max(1, static_cast<int>(std::ceil(remain)));
}

std::shared_ptr<CachedSurrogate> SurrogateCache::Peek(
    const SurrogateKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  return it == map_.end() ? nullptr : it->second.entry;
}

void SurrogateCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  failures_.clear();
}

size_t SurrogateCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

SurrogateCache::Stats SurrogateCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace surf
