#include "ml/linear.h"

#include <cassert>
#include <cmath>

#include "util/summary.h"

namespace surf {

bool CholeskySolve(std::vector<double> a, std::vector<double> b, size_t n,
                   std::vector<double>* x) {
  assert(a.size() == n * n && b.size() == n);
  // In-place Cholesky A = L L^T (lower triangle).
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = a[i * n + j];
      for (size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      if (i == j) {
        if (s <= 0.0) return false;
        a[i * n + j] = std::sqrt(s);
      } else {
        a[i * n + j] = s / a[j * n + j];
      }
    }
  }
  // Forward substitution L z = b.
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= a[i * n + k] * b[k];
    b[i] = s / a[i * n + i];
  }
  // Backward substitution L^T x = z.
  for (size_t ii = n; ii > 0; --ii) {
    const size_t i = ii - 1;
    double s = b[i];
    for (size_t k = i + 1; k < n; ++k) s -= a[k * n + i] * b[k];
    b[i] = s / a[i * n + i];
  }
  *x = std::move(b);
  return true;
}

Status RidgeRegression::Fit(const FeatureMatrix& x,
                            const std::vector<double>& y) {
  const size_t n = x.num_rows();
  const size_t p = x.num_features();
  if (n == 0) return Status::InvalidArgument("empty training matrix");
  if (n != y.size()) {
    return Status::InvalidArgument("feature/target row mismatch");
  }

  // Standardize features; center target.
  std::vector<double> mean(p, 0.0), scale(p, 1.0);
  for (size_t j = 0; j < p; ++j) {
    mean[j] = Mean(x.feature(j));
    double s = 0.0;
    for (double v : x.feature(j)) s += (v - mean[j]) * (v - mean[j]);
    scale[j] = std::sqrt(s / static_cast<double>(n));
    if (scale[j] <= 1e-12) scale[j] = 1.0;
  }
  const double y_mean = Mean(y);

  // Normal equations on standardized data: (Z^T Z + αI) w = Z^T r.
  std::vector<double> a(p * p, 0.0), b(p, 0.0);
  for (size_t j = 0; j < p; ++j) {
    const auto& cj = x.feature(j);
    for (size_t k = j; k < p; ++k) {
      const auto& ck = x.feature(k);
      double s = 0.0;
      for (size_t r = 0; r < n; ++r) {
        s += (cj[r] - mean[j]) / scale[j] * (ck[r] - mean[k]) / scale[k];
      }
      a[j * p + k] = s;
      a[k * p + j] = s;
    }
    double s = 0.0;
    for (size_t r = 0; r < n; ++r) {
      s += (cj[r] - mean[j]) / scale[j] * (y[r] - y_mean);
    }
    b[j] = s;
  }
  for (size_t j = 0; j < p; ++j) a[j * p + j] += alpha_;

  std::vector<double> w;
  if (!CholeskySolve(std::move(a), std::move(b), p, &w)) {
    return Status::Internal("normal equations not SPD");
  }

  // De-standardize: coef_j = w_j / scale_j.
  coef_.resize(p);
  intercept_ = y_mean;
  for (size_t j = 0; j < p; ++j) {
    coef_[j] = w[j] / scale[j];
    intercept_ -= coef_[j] * mean[j];
  }
  trained_ = true;
  return Status::OK();
}

double RidgeRegression::Predict(const std::vector<double>& x) const {
  assert(trained_);
  assert(x.size() == coef_.size());
  double out = intercept_;
  for (size_t j = 0; j < coef_.size(); ++j) out += coef_[j] * x[j];
  return out;
}

}  // namespace surf
