// Figure 5 (+ the §V-C activity experiment): the qualitative real-data
// scenarios over the simulated Crimes and Human-Activity datasets.
//
// Left: a side-by-side surrogate-vs-true density heat-map summary plus
// the identified regions and their compliance with f > Q3 (the paper
// reports 100 % compliance). Right: the activity-ratio rare-event
// experiment with its exceedance probability (paper: P ≈ 0.0035).

#include <cstdio>

#include "bench_common.h"
#include "data/activity_sim.h"
#include "data/crimes_sim.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/summary.h"
#include "util/table_printer.h"

using namespace surf;

namespace {

void RunCrimes(bool full) {
  CrimesSimSpec spec;
  spec.num_points = full ? 100000 : 30000;
  const CrimesDataset crimes = SimulateCrimes(spec);

  SurfOptions options;
  options.workload.num_queries = full ? 20000 : 8000;
  options.finder.gso.num_glowworms = 150;
  options.finder.gso.max_iterations = 120;
  auto surf = Surf::Build(&crimes.data, Statistic::Count({0, 1}), options);
  if (!surf.ok()) {
    std::fprintf(stderr, "%s\n", surf.status().ToString().c_str());
    return;
  }

  const Ecdf ecdf = surf->SampleStatisticEcdf(2000, 9);
  const double q3 = ecdf.Quantile(0.75);
  const FindResult result =
      surf->FindRegions(q3, ThresholdDirection::kAbove);

  // Heat-map agreement: correlation between surrogate and true counts on
  // a grid of probe cells (the visual Fig. 5 claim, quantified).
  std::vector<double> est, truth;
  for (int gx = 0; gx < 15; ++gx) {
    for (int gy = 0; gy < 15; ++gy) {
      const Region cell({(gx + 0.5) / 15.0, (gy + 0.5) / 15.0},
                        {0.06, 0.06});
      est.push_back(surf->surrogate().Predict(cell));
      truth.push_back(surf->evaluator().Evaluate(cell));
    }
  }
  std::printf("Fig. 5 (crimes): y_R = Q3 = %.0f\n", q3);
  std::printf("surrogate-vs-true heat-map correlation: %.3f "
              "(coarse approximation is expected, paper: 'coarse "
              "grained')\n",
              PearsonCorrelation(est, truth));

  TablePrinter table({"region", "estimate", "true", "complies"});
  for (size_t i = 0; i < result.regions.size(); ++i) {
    const auto& r = result.regions[i];
    table.AddRow({"#" + std::to_string(i + 1),
                  FormatDouble(r.estimate, 0),
                  FormatDouble(r.true_value, 0),
                  r.complies_true ? "yes" : "no"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("compliance: %.0f%% (paper: 100%%), mined in %.2fs\n\n",
              100.0 * result.report.true_compliance,
              result.report.seconds);
}

void RunActivity(bool full) {
  ActivitySimSpec spec;
  spec.num_points = full ? 60000 : 20000;
  const ActivityDataset activity = SimulateActivity(spec);
  const double stand =
      static_cast<double>(static_cast<int>(Activity::kStanding));

  SurfOptions options;
  options.workload.num_queries = full ? 20000 : 8000;
  options.finder.gso.num_glowworms = 180;
  options.finder.gso.max_iterations = 150;
  options.finder.c = 2.0;
  auto surf = Surf::Build(&activity.data,
                          Statistic::LabelRatio({0, 1, 2}, 3, stand),
                          options);
  if (!surf.ok()) {
    std::fprintf(stderr, "%s\n", surf.status().ToString().c_str());
    return;
  }
  const Ecdf ecdf = surf->SampleStatisticEcdf(full ? 10000 : 4000, 10);
  const double y_r = 0.3;
  std::printf("§V-C (activity): P(ratio(stand) > %.1f) = %.4f "
              "(paper: 0.0035 — a rare event)\n",
              y_r, ecdf.Exceedance(y_r));

  const FindResult result =
      surf->FindRegions(y_r, ThresholdDirection::kAbove);
  std::printf("regions found: %zu, compliance %.0f%%, best true ratio "
              "%.2f\n",
              result.regions.size(),
              100.0 * result.report.true_compliance,
              result.regions.empty() ? 0.0
                                     : result.regions[0].true_value);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  std::printf("Figure 5 + §V-C — qualitative real-data experiments "
              "(%s configuration)\n\n",
              full ? "paper" : "quick");
  RunCrimes(full);
  RunActivity(full);
  return 0;
}
