#ifndef SURF_ML_TREE_H_
#define SURF_ML_TREE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/binning.h"
#include "ml/matrix.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace surf {

/// \brief Hyper-parameters of a single boosted regression tree.
///
/// These mirror the XGBoost knobs the paper sweeps in §V-E/§V-H:
/// `max_depth`, L2 leaf regularization `reg_lambda`, plus the usual
/// structural guards.
struct TreeParams {
  size_t max_depth = 6;
  size_t min_samples_leaf = 1;
  /// Minimum sum of hessians per child (XGBoost's min_child_weight).
  double min_child_weight = 1.0;
  /// L2 regularization on leaf weights (XGBoost's reg_lambda / λ).
  double reg_lambda = 1.0;
  /// Minimum split gain (XGBoost's gamma / γ).
  double min_split_gain = 0.0;
  /// Fraction of features considered per tree (colsample_bytree).
  double colsample = 1.0;
  /// Derive the larger child's histogram by subtracting the smaller
  /// child's from the parent's instead of rebuilding it. Off switches to
  /// direct per-node builds (reference path for equivalence tests).
  bool use_sibling_subtraction = true;
};

/// \brief One regression tree trained on gradient/hessian pairs
/// (second-order boosting; for squared loss g = pred − y, h = 1).
///
/// Training is histogram-based over the contiguous pre-binned matrix;
/// prediction walks raw double thresholds, so a fitted tree is independent
/// of the binner. Nodes are packed 16 bytes each with the left child
/// stored implicitly at `index + 1` (depth-first layout), which halves the
/// traversal working set versus a naive five-field node.
class RegressionTree {
 public:
  /// Row span of one leaf in the (partitioned) training row array, plus
  /// the leaf's output value. Lets boosting update training predictions
  /// with one add per row instead of a full tree walk.
  struct LeafRange {
    uint32_t begin = 0;
    uint32_t end = 0;
    double value = 0.0;
  };

  /// Fits the tree on `*rows` (indices into the binned matrix), which is
  /// partitioned in place so that on return each leaf owns a contiguous
  /// span of it (see leaf_ranges()). An empty `hess` means unit hessians
  /// (squared loss), enabling the count-only histogram fast path. When
  /// `pool` is non-null, per-feature histograms build in parallel; results
  /// are bit-identical for any thread count (each feature is accumulated
  /// by exactly one task, in row order).
  void Fit(const BinnedMatrix& binned, const FeatureBinner& binner,
           const std::vector<double>& grad, const std::vector<double>& hess,
           std::vector<uint32_t>* rows, const TreeParams& params, Rng* rng,
           ThreadPool* pool = nullptr);

  /// Leaf value for one raw feature vector.
  double Predict(const std::vector<double>& x) const;
  double Predict(const double* x) const;

  /// Copy-free blocked traversal: adds `scale * leaf(r)` to
  /// `out[r - begin]` for every row r in [begin, end), reading features
  /// straight out of column-major storage (`cols[j][r]` is feature j of
  /// row r — see FeatureMatrix::ColPointers()).
  void AddPredictions(const double* const* cols, size_t begin, size_t end,
                      double scale, double* out) const;

  /// Leaf spans over the row array passed to Fit (training-time only;
  /// empty for deserialized trees).
  const std::vector<LeafRange>& leaf_ranges() const { return leaf_ranges_; }

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const;
  size_t Depth() const;

  /// Largest feature index referenced by any split (0 for leaf-only
  /// trees); loaders validate this against the model's feature width.
  size_t MaxFeatureIndex() const;

  /// Text (de)serialization for model persistence. Deserialize validates
  /// the node count, record fields, and tree shape, and returns
  /// Status::IOError on malformed input instead of trusting it.
  void Serialize(std::ostream& os) const;
  static StatusOr<RegressionTree> Deserialize(std::istream& is);

 private:
  /// Packed 16-byte node. Internal node: `tv` is the split threshold
  /// (go left if x[feature] <= tv), `right` is the right-child index and
  /// the left child lives at the next index. Leaf: `tv` is NaN and
  /// `right` points at the node itself, so the traversal select
  /// `x <= tv ? idx+1 : right` self-loops branch-free at leaves
  /// (`v <= NaN` is false for every v, including NaN and ±inf). Leaf
  /// values live in the parallel `values_` array, read once per row.
  struct Node {
    double tv = 0.0;
    int32_t right = -1;
    uint32_t feature = 0;
  };
  static_assert(sizeof(Node) == 16, "prediction hot path expects packed nodes");

  bool IsLeaf(size_t idx) const {
    return nodes_[idx].right == static_cast<int32_t>(idx);
  }

  struct SplitDecision {
    bool found = false;
    size_t feature = 0;
    uint16_t bin = 0;
    double threshold = 0.0;
    double gain = 0.0;
    // Totals of the left child at the chosen bin (right = parent - left),
    // so children inherit their sums without another pass over rows.
    double g_left = 0.0;
    double h_left = 0.0;
    size_t n_left = 0;
  };

  struct TrainState;  // defined in tree.cc

  int32_t BuildNode(TrainState& st, int hist_id, size_t begin, size_t end,
                    size_t depth, double g_sum, double h_sum);

  SplitDecision FindBestSplit(const TrainState& st, int hist_id,
                              double g_total, double h_total,
                              size_t n_total) const;

  std::vector<Node> nodes_;
  /// Leaf output per node index (0.0 at internal nodes).
  std::vector<double> values_;
  std::vector<LeafRange> leaf_ranges_;
  /// Cached Depth() of the fitted/loaded tree: the blocked predictor
  /// walks interleaved row groups for exactly depth-1 levels (leaves
  /// self-loop), overlapping the per-level load latencies.
  size_t depth_ = 0;
};

}  // namespace surf

#endif  // SURF_ML_TREE_H_
