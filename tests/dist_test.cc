// Tests for the distributed scatter-gather subsystem (src/dist): the
// ISSUE 9 acceptance contract. Real worker surfd instances (in-process
// HttpServer + SurfHandler on loopback ports) serve POST
// /v1/shards:evaluate; a coordinator-side ClusterEvaluator scatters
// shard groups at 1/2/4 workers and must label every statistic kind
// bit-identically to the in-process single-node `shards = N` evaluator.
// Fault paths covered here: worker death mid-fleet (shard-group
// re-homing, degraded provenance), dataset fingerprint mismatch (412,
// non-retriable), and mid-scatter cancellation (empty-prefix contract,
// connections released for the next batch).

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "data/sharded.h"
#include "dist/cluster_evaluator.h"
#include "dist/http_client.h"
#include "dist/worker_pool.h"
#include "dist/wire.h"
#include "net/http_server.h"
#include "net/json_codec.h"
#include "net/metrics.h"
#include "net/surf_handler.h"
#include "serve/fingerprint.h"
#include "serve/mining_service.h"
#include "stats/sharded_evaluator.h"
#include "util/cancel.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace surf {
namespace {

/// Random dataset over [0,1]^d with a Gaussian value column and a binary
/// label. Values are deliberately non-integer: floating-point addition is
/// then non-associative, so bit-identity across the cluster only holds if
/// the coordinator's gather replays the exact in-process merge fold.
Dataset MakeData(size_t n, size_t d, uint64_t seed) {
  std::vector<std::string> names;
  for (size_t j = 0; j < d; ++j) names.push_back("a" + std::to_string(j));
  names.push_back("v");
  names.push_back("label");
  Dataset ds(names);
  Rng rng(seed);
  std::vector<double> row(d + 2);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) row[j] = rng.Uniform();
    row[d] = rng.Gaussian(1.0, 2.0);
    row[d + 1] = rng.Bernoulli(0.3) ? 1.0 : 0.0;
    ds.AddRow(row);
  }
  return ds;
}

Statistic MakeStatistic(int kind, size_t d) {
  std::vector<size_t> cols;
  for (size_t j = 0; j < d; ++j) cols.push_back(j);
  switch (kind) {
    case 0: return Statistic::Count(cols);
    case 1: return Statistic::Average(cols, d);
    case 2: return Statistic::Sum(cols, d);
    case 3: return Statistic::MedianOf(cols, d);
    case 4: return Statistic::VarianceOf(cols, d);
    default: return Statistic::LabelRatio(cols, d + 1, 1.0);
  }
}

std::vector<Region> RandomQueries(size_t count, size_t d, uint64_t seed) {
  Rng rng(seed);
  std::vector<Region> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::vector<double> center(d), half(d);
    for (size_t j = 0; j < d; ++j) {
      center[j] = rng.Uniform();
      half[j] = rng.Uniform(0.05, 0.45);
    }
    queries.emplace_back(center, half);
  }
  return queries;
}

/// Bitwise double equality with NaN == NaN.
void ExpectSameBits(double expected, double actual, const std::string& what) {
  uint64_t eb, ab;
  std::memcpy(&eb, &expected, sizeof(eb));
  std::memcpy(&ab, &actual, sizeof(ab));
  EXPECT_EQ(eb, ab) << what << ": " << expected << " vs " << actual;
}

/// One in-process worker: MiningService + SurfHandler + HttpServer on an
/// ephemeral loopback port, with the shared dataset registered.
struct Worker {
  explicit Worker(const Dataset& data) {
    service = std::make_unique<MiningService>();
    EXPECT_TRUE(service->RegisterDataset("trips", data).ok());
    metrics = std::make_unique<ServerMetrics>();
    handler = std::make_unique<SurfHandler>(service.get(), metrics.get());
    HttpServer::Options options;
    options.port = 0;
    server = std::make_unique<HttpServer>(options, handler->AsHttpHandler());
    EXPECT_TRUE(server->Start().ok());
  }

  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(server->port());
  }

  std::unique_ptr<MiningService> service;
  std::unique_ptr<ServerMetrics> metrics;
  std::unique_ptr<SurfHandler> handler;
  std::unique_ptr<HttpServer> server;
};

/// A fleet of `n` workers over one dataset, plus the coordinator pool.
struct Fleet {
  Fleet(const Dataset& data, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      workers.push_back(std::make_unique<Worker>(data));
    }
    std::vector<std::string> endpoints;
    for (const auto& w : workers) endpoints.push_back(w->endpoint());
    pool = std::make_unique<dist::WorkerPool>(endpoints,
                                              /*rpc_timeout_seconds=*/30.0);
    EXPECT_TRUE(pool->status().ok()) << pool->status().ToString();
  }

  std::vector<std::unique_ptr<Worker>> workers;
  std::unique_ptr<dist::WorkerPool> pool;
};

/// The single-node reference: the exact evaluator MakeEvaluator builds
/// for `backend = sharded, shards = N` (range-partitioned on the first
/// box column, single-threaded merge fold).
ShardedScanEvaluator SingleNodeReference(const Dataset& data,
                                         const Statistic& stat,
                                         size_t num_shards) {
  ShardingOptions options;
  options.num_shards = num_shards;
  options.order_by = static_cast<int>(stat.region_cols.front());
  options.columns = stat.region_cols;
  if (stat.needs_value_column()) {
    options.columns.push_back(static_cast<size_t>(stat.value_col));
  }
  return ShardedScanEvaluator(ShardedDataset::Partition(data, options), stat,
                              /*num_threads=*/1);
}

// ----------------------------------------------------------- bit identity

TEST(ClusterEvaluatorTest, MatchesSingleNodeBitIdenticallyAcrossFleetSizes) {
  const size_t d = 2;
  const Dataset data = MakeData(4000, d, 11);
  const uint64_t fingerprint = FingerprintDataset(data);
  const std::vector<Region> queries = RandomQueries(12, d, 21);
  const size_t num_shards = 8;

  for (size_t fleet_size : {1u, 2u, 4u}) {
    Fleet fleet(data, fleet_size);
    for (int kind = 0; kind < 6; ++kind) {
      const Statistic stat = MakeStatistic(kind, d);
      dist::ClusterEvaluator::Options options;
      options.dataset = "trips";
      options.fingerprint = fingerprint;
      options.num_shards = num_shards;
      dist::ClusterEvaluator cluster(fleet.pool.get(), stat, options);
      const ShardedScanEvaluator reference =
          SingleNodeReference(data, stat, num_shards);

      const std::vector<double> expected =
          reference.EvaluateBatch(queries, CancelToken());
      const std::vector<double> actual =
          cluster.EvaluateBatch(queries, CancelToken());

      ASSERT_EQ(actual.size(), expected.size());
      for (size_t q = 0; q < expected.size(); ++q) {
        ExpectSameBits(expected[q], actual[q],
                       StatisticKindName(stat.kind) + " @ " +
                           std::to_string(fleet_size) + " workers, query " +
                           std::to_string(q));
      }
      EXPECT_FALSE(cluster.degraded())
          << "clean fleet must not degrade: " << cluster.degraded_reason();
    }
    EXPECT_EQ(fleet.pool->shard_retries(), 0u);
  }
}

TEST(ClusterEvaluatorTest, DefaultShardCountIsOneSlabPerWorker) {
  const size_t d = 2;
  const Dataset data = MakeData(1500, d, 5);
  Fleet fleet(data, 3);
  const Statistic stat = MakeStatistic(1, d);
  dist::ClusterEvaluator::Options options;
  options.dataset = "trips";
  options.num_shards = 0;  // default: one shard per worker
  dist::ClusterEvaluator cluster(fleet.pool.get(), stat, options);
  EXPECT_EQ(cluster.num_shards(), 3u);

  const std::vector<Region> queries = RandomQueries(6, d, 6);
  const ShardedScanEvaluator reference = SingleNodeReference(data, stat, 3);
  const std::vector<double> expected =
      reference.EvaluateBatch(queries, CancelToken());
  const std::vector<double> actual =
      cluster.EvaluateBatch(queries, CancelToken());
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t q = 0; q < expected.size(); ++q) {
    ExpectSameBits(expected[q], actual[q], "query " + std::to_string(q));
  }
}

TEST(ShardEvaluateEndpointTest, NaturalOrderPartitionMatchesSingleNode) {
  // The wire supports order_by = -1 (natural row order). Drive the
  // worker endpoint directly with a natural-order spec and fold the
  // returned partials ascending: the result must be bit-identical to the
  // in-process natural-order sharded evaluator.
  const size_t d = 2;
  const Dataset data = MakeData(2000, d, 17);
  Worker worker(data);
  const std::vector<Region> queries = RandomQueries(8, d, 18);
  const size_t num_shards = 4;

  for (int kind = 0; kind < 6; ++kind) {
    const Statistic stat = MakeStatistic(kind, d);
    dist::ShardEvaluateRequest request;
    request.dataset = "trips";
    request.statistic = stat;
    request.num_shards = num_shards;
    request.order_by = -1;  // natural
    request.columns = stat.region_cols;
    if (stat.needs_value_column()) {
      request.columns.push_back(static_cast<size_t>(stat.value_col));
    }
    for (size_t s = 0; s < num_shards; ++s) request.shards.push_back(s);
    request.queries = queries;

    auto reply = dist::HttpPost(
        "127.0.0.1", worker.server->port(), "/v1/shards:evaluate",
        WriteJson(ShardEvaluateRequestToJson(request)), 30.0, CancelToken());
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_EQ(reply->status_code, 200) << reply->body;
    auto doc = ParseJson(reply->body);
    ASSERT_TRUE(doc.ok());
    auto response = ShardEvaluateResponseFromJson(*doc, stat);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    ASSERT_EQ(response->partials.size(), queries.size());

    ShardingOptions options;
    options.num_shards = num_shards;
    options.order_by = -1;
    options.columns = request.columns;
    const ShardedScanEvaluator reference(
        ShardedDataset::Partition(data, options), stat, /*num_threads=*/1);
    const std::vector<double> expected =
        reference.EvaluateBatch(queries, CancelToken());

    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_EQ(response->partials[q].size(), num_shards);
      StatisticAccumulator merged = response->partials[q][0];
      for (size_t s = 1; s < num_shards; ++s) {
        merged.Merge(response->partials[q][s]);
      }
      ExpectSameBits(expected[q], merged.Finalize(),
                     StatisticKindName(stat.kind) + " natural query " +
                         std::to_string(q));
    }
  }
}

// -------------------------------------------------------- fault tolerance

TEST(ClusterEvaluatorTest, ReHomesShardGroupsWhenAWorkerDies) {
  const size_t d = 2;
  const Dataset data = MakeData(2500, d, 33);
  Fleet fleet(data, 2);
  const Statistic stat = MakeStatistic(4, d);  // variance: float-sensitive
  dist::ClusterEvaluator::Options options;
  options.dataset = "trips";
  options.num_shards = 4;
  dist::ClusterEvaluator cluster(fleet.pool.get(), stat, options);
  const std::vector<Region> queries = RandomQueries(8, d, 34);
  const ShardedScanEvaluator reference = SingleNodeReference(data, stat, 4);
  const std::vector<double> expected =
      reference.EvaluateBatch(queries, CancelToken());

  // Kill worker 1 (its port stays dark: connection refused).
  fleet.workers[1]->server->Shutdown();

  const std::vector<double> actual =
      cluster.EvaluateBatch(queries, CancelToken());
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t q = 0; q < expected.size(); ++q) {
    ExpectSameBits(expected[q], actual[q],
                   "re-homed query " + std::to_string(q));
  }
  // The re-home degraded the evaluation but changed no bits.
  EXPECT_TRUE(cluster.degraded());
  EXPECT_NE(cluster.degraded_reason().find("re-homed"), std::string::npos)
      << cluster.degraded_reason();
  EXPECT_GE(fleet.pool->shard_retries(), 1u);
  EXPECT_FALSE(fleet.pool->healthy(1));
  EXPECT_TRUE(fleet.pool->healthy(0));
}

TEST(ClusterEvaluatorTest, FingerprintMismatchYieldsNaNWithoutRetryStorm) {
  // A worker holding a same-named but different dataset answers 412
  // (FailedPrecondition) — non-retriable, so the group fails cleanly to
  // NaN labels instead of hammering the worker.
  const size_t d = 2;
  const Dataset data = MakeData(800, d, 44);
  Fleet fleet(data, 1);
  const Statistic stat = MakeStatistic(0, d);
  dist::ClusterEvaluator::Options options;
  options.dataset = "trips";
  options.fingerprint = 0x1234;  // wrong on purpose
  dist::ClusterEvaluator cluster(fleet.pool.get(), stat, options);

  const std::vector<Region> queries = RandomQueries(3, d, 45);
  const std::vector<double> labels =
      cluster.EvaluateBatch(queries, CancelToken());
  ASSERT_EQ(labels.size(), queries.size());
  for (double label : labels) EXPECT_TRUE(std::isnan(label));
  EXPECT_TRUE(cluster.degraded());
  EXPECT_EQ(fleet.pool->shard_retries(), 0u)
      << "FailedPrecondition must not be retried";
}

TEST(ClusterEvaluatorTest, MidScatterCancellationReleasesWorkers) {
  const size_t d = 2;
  const Dataset data = MakeData(2000, d, 55);
  Fleet fleet(data, 2);
  const Statistic stat = MakeStatistic(2, d);
  dist::ClusterEvaluator::Options options;
  options.dataset = "trips";
  options.num_shards = 4;
  dist::ClusterEvaluator cluster(fleet.pool.get(), stat, options);
  const std::vector<Region> queries = RandomQueries(8, d, 56);

  // Stall every group's RPC long enough for the deadline to fire while
  // the scatter is in flight.
  ASSERT_TRUE(
      FailpointRegistry::Global().Set("dist.shard_rpc", "delay:300").ok());
  CancelSource source;
  source.SetDeadline(0.1);
  const auto start = std::chrono::steady_clock::now();
  const std::vector<double> cancelled =
      cluster.EvaluateBatch(queries, source.token());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  FailpointRegistry::Global().Clear("dist.shard_rpc");

  // Empty-prefix contract: no label survives a fired token.
  EXPECT_TRUE(cancelled.empty());
  // The cancel unwound promptly — no socket or retry-backoff hang.
  EXPECT_LT(elapsed, 5.0);

  // Connections were released: the very next batch (fresh token) labels
  // every query, bit-identical to single-node.
  const ShardedScanEvaluator reference = SingleNodeReference(data, stat, 4);
  const std::vector<double> expected =
      reference.EvaluateBatch(queries, CancelToken());
  const std::vector<double> actual =
      cluster.EvaluateBatch(queries, CancelToken());
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t q = 0; q < expected.size(); ++q) {
    ExpectSameBits(expected[q], actual[q],
                   "post-cancel query " + std::to_string(q));
  }
}

TEST(ShardEvaluateEndpointTest, RejectsUnknownDatasetAndBadShards) {
  const size_t d = 2;
  const Dataset data = MakeData(300, d, 66);
  Worker worker(data);
  const Statistic stat = MakeStatistic(0, d);

  dist::ShardEvaluateRequest request;
  request.dataset = "nope";
  request.statistic = stat;
  request.num_shards = 2;
  request.order_by = 0;
  request.columns = stat.region_cols;
  request.shards = {0, 1};
  request.queries = RandomQueries(1, d, 67);
  auto missing = dist::HttpPost(
      "127.0.0.1", worker.server->port(), "/v1/shards:evaluate",
      WriteJson(ShardEvaluateRequestToJson(request)), 10.0, CancelToken());
  ASSERT_TRUE(missing.ok()) << missing.status().ToString();
  EXPECT_EQ(missing->status_code, 404);

  request.dataset = "trips";
  request.columns = {0, 1, 99};  // column out of range
  auto bad_col = dist::HttpPost(
      "127.0.0.1", worker.server->port(), "/v1/shards:evaluate",
      WriteJson(ShardEvaluateRequestToJson(request)), 10.0, CancelToken());
  ASSERT_TRUE(bad_col.ok()) << bad_col.status().ToString();
  EXPECT_EQ(bad_col->status_code, 400);
}

}  // namespace
}  // namespace surf
