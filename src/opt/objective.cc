#include "opt/objective.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace surf {

bool SatisfiesThreshold(double y, double threshold,
                        ThresholdDirection direction) {
  if (std::isnan(y)) return false;
  return direction == ThresholdDirection::kAbove ? y > threshold
                                                 : y < threshold;
}

RegionObjective::RegionObjective(StatisticFn statistic,
                                 ObjectiveConfig config)
    : statistic_(std::move(statistic)), config_(config) {
  assert(statistic_ != nullptr);
}

RegionObjective::RegionObjective(StatisticFn statistic,
                                 BatchStatisticFn batch_statistic,
                                 ObjectiveConfig config)
    : statistic_(std::move(statistic)),
      batch_statistic_(std::move(batch_statistic)),
      config_(config) {
  assert(statistic_ != nullptr);
}

FitnessValue RegionObjective::FromStatistic(const Region& region,
                                            double y) const {
  FitnessValue out;
  if (std::isnan(y) || !std::isfinite(y)) return out;

  const double diff = config_.direction == ThresholdDirection::kBelow
                          ? config_.threshold - y
                          : y - config_.threshold;

  if (config_.use_log) {
    // Eq. 4: undefined (invalid) outside the constraint.
    if (diff <= 0.0) return out;
    double size_penalty = 0.0;
    for (size_t i = 0; i < region.dims(); ++i) {
      const double l = region.half_length(i);
      if (l <= 0.0) return out;
      size_penalty += std::log(l);
    }
    out.value = std::log(diff) - config_.c * size_penalty;
    out.valid = true;
    return out;
  }

  // Eq. 2: defined everywhere (Fig. 7 bottom row shows the negative
  // plateau), but still undefined for degenerate sizes.
  double volume_pow = 1.0;
  for (size_t i = 0; i < region.dims(); ++i) {
    const double l = region.half_length(i);
    if (l <= 0.0) return out;
    volume_pow *= std::pow(l, config_.c);
  }
  out.value = diff / volume_pow;
  out.valid = true;
  return out;
}

FitnessValue RegionObjective::Evaluate(const Region& region) const {
  if (region.Degenerate()) return FitnessValue{};
  return FromStatistic(region, statistic_(region));
}

std::vector<FitnessValue> RegionObjective::EvaluateMany(
    const std::vector<Region>& regions,
    std::vector<double>* stats_out) const {
  std::vector<FitnessValue> out(regions.size());
  if (stats_out != nullptr) {
    stats_out->assign(regions.size(),
                      std::numeric_limits<double>::quiet_NaN());
  }
  if (regions.empty()) return out;
  if (batch_statistic_ == nullptr) {
    for (size_t i = 0; i < regions.size(); ++i) {
      // Same short-circuit as Evaluate: degenerate regions never probe
      // the statistic.
      if (regions[i].Degenerate()) continue;
      const double y = statistic_(regions[i]);
      if (stats_out != nullptr) (*stats_out)[i] = y;
      out[i] = FromStatistic(regions[i], y);
    }
    return out;
  }
  // Degenerate regions never reach the statistic source (same
  // short-circuit as Evaluate); the common all-valid case goes through
  // without any gather/scatter.
  bool any_degenerate = false;
  for (const Region& region : regions) {
    if (region.Degenerate()) {
      any_degenerate = true;
      break;
    }
  }
  if (!any_degenerate) {
    const std::vector<double> stats = batch_statistic_(regions);
    assert(stats.size() == regions.size());
    for (size_t i = 0; i < regions.size(); ++i) {
      if (stats_out != nullptr) (*stats_out)[i] = stats[i];
      out[i] = FromStatistic(regions[i], stats[i]);
    }
    return out;
  }
  std::vector<Region> live;
  std::vector<size_t> live_idx;
  live.reserve(regions.size());
  live_idx.reserve(regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    if (regions[i].Degenerate()) continue;
    live.push_back(regions[i]);
    live_idx.push_back(i);
  }
  const std::vector<double> stats = batch_statistic_(live);
  assert(stats.size() == live.size());
  for (size_t k = 0; k < live.size(); ++k) {
    const size_t i = live_idx[k];
    if (stats_out != nullptr) (*stats_out)[i] = stats[k];
    out[i] = FromStatistic(regions[i], stats[k]);
  }
  return out;
}

FitnessFn RegionObjective::AsFitnessFn() const {
  return [this](const Region& region) { return Evaluate(region); };
}

BatchFitnessFn RegionObjective::AsBatchFitnessFn() const {
  return [this](const std::vector<Region>& regions) {
    return EvaluateMany(regions);
  };
}

BatchFitnessFn ToBatchFitness(FitnessFn fitness) {
  assert(fitness != nullptr);
  return [fitness = std::move(fitness)](const std::vector<Region>& regions) {
    std::vector<FitnessValue> out(regions.size());
    for (size_t i = 0; i < regions.size(); ++i) out[i] = fitness(regions[i]);
    return out;
  };
}

std::vector<double> EvaluateStatistics(const std::vector<Region>& regions,
                                       const StatisticFn& scalar,
                                       const BatchStatisticFn& batch) {
  if (batch != nullptr) return batch(regions);
  std::vector<double> out;
  out.reserve(regions.size());
  for (const Region& region : regions) out.push_back(scalar(region));
  return out;
}

}  // namespace surf
