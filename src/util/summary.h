#ifndef SURF_UTIL_SUMMARY_H_
#define SURF_UTIL_SUMMARY_H_

#include <cstddef>
#include <vector>

namespace surf {

/// \brief Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1); 0 for fewer than two values.
double StdDev(const std::vector<double>& xs);

/// Linear-interpolation quantile, q in [0, 1]. Sorts a copy.
double Quantile(std::vector<double> xs, double q);

/// Median shorthand for Quantile(xs, 0.5).
double Median(std::vector<double> xs);

/// Pearson correlation coefficient; 0 if either side is constant.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Ordinary least squares fit y = a + b*x. Returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace surf

#endif  // SURF_UTIL_SUMMARY_H_
