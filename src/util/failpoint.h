#ifndef SURF_UTIL_FAILPOINT_H_
#define SURF_UTIL_FAILPOINT_H_

/// \file
/// \brief Failpoint-driven fault injection: a registry of named sites at
/// which deterministic failures or delays can be provoked at runtime.
///
/// A *failpoint* is a named hook compiled into a production code path
/// (dataset load, GBRT training, cache insert, shard evaluation, socket
/// write). When the registry is idle — the normal state — every hook
/// costs one relaxed atomic load and a never-taken branch. When armed,
/// the site either fails (returns an injected `Internal` status),
/// delays (sleeps a configured duration), or fails probabilistically
/// with a probability drawn from a counter-based hash that is
/// deterministic under the registry seed: run N of a given site makes
/// the same fire/pass decision on every execution with the same seed.
///
/// Activation channels:
///   * `SURF_FAILPOINTS=site=action[,site=action...]` environment
///     variable, parsed on first registry use (plus
///     `SURF_FAILPOINTS_SEED=n` for the deterministic seed);
///   * the debug-gated `POST /v1/failpoints` admin endpoint in surfd;
///   * direct `FailpointRegistry::Global().Set(...)` calls in tests.
///
/// Action grammar (the value after `site=`):
///   * `error`      — every hit fails;
///   * `prob:p`     — a hit fails with probability `p` in [0, 1];
///   * `delay:ms`   — every hit sleeps `ms` milliseconds, then passes.
///
/// Sites that return `Status`/`StatusOr` guard with `SURF_FAILPOINT`;
/// sites with no status channel (the uint8 mask scan, the socket write
/// loop) call `MaybeFailpoint` and translate a non-OK result into their
/// native failure mode (NaN statistic, aborted write).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace surf {

/// \brief Parsed action of one armed failpoint.
struct FailpointSpec {
  /// \brief What the site does when it fires.
  enum class Kind {
    /// Return an injected Internal status (probability-gated).
    kError,
    /// Sleep `delay_ms`, then pass.
    kDelay,
  };
  /// The configured behaviour.
  Kind kind = Kind::kError;
  /// Fire probability for kError (1.0 = every hit).
  double probability = 1.0;
  /// Sleep duration for kDelay, milliseconds.
  double delay_ms = 0.0;
  /// The original action text ("error", "prob:0.05", "delay:20").
  std::string raw;
};

/// \brief Process-wide registry of armed failpoints.
///
/// Thread-safe: arming/clearing and hit evaluation take an internal
/// mutex; the fast path for an idle registry is one lock-free atomic
/// load via `active()`. Delay sleeps happen outside the lock.
class FailpointRegistry {
 public:
  /// \brief Observability snapshot of one armed failpoint.
  struct Info {
    /// Site name (e.g. "serve.train").
    std::string site;
    /// The action text it was armed with.
    std::string action;
    /// Times the armed site was reached.
    uint64_t hits = 0;
    /// Times it actually fired (failed or slept).
    uint64_t fires = 0;
  };

  /// The process-wide registry. First use parses `SURF_FAILPOINTS` /
  /// `SURF_FAILPOINTS_SEED` from the environment.
  static FailpointRegistry& Global();

  /// Whether any failpoint is armed anywhere in the process — the
  /// only check on the hot path. Relaxed: a site may observe a stale
  /// idle/armed state for a few instructions, never a torn one.
  static bool active() {
    return active_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Arms failpoints from a comma-separated spec list
  /// (`a=error,b=delay:20`). Whitespace around entries is ignored;
  /// empty specs are a no-op. Rejects unknown actions and malformed
  /// numbers without arming anything from the list.
  Status Configure(const std::string& specs);

  /// Arms one site with `action` ("error", "prob:p", "delay:ms"),
  /// replacing any previous arming of the same site.
  Status Set(const std::string& site, const std::string& action);

  /// Disarms one site; returns whether it was armed.
  bool Clear(const std::string& site);

  /// Disarms everything.
  void ClearAll();

  /// Seeds the deterministic fire decisions (`prob:` actions). Also
  /// resets per-site hit counters so decision sequences restart.
  void SetSeed(uint64_t seed);

  /// The current decision seed.
  uint64_t seed() const;

  /// Snapshot of every armed failpoint with its counters, sorted by
  /// site name.
  std::vector<Info> List() const;

  /// The failpoint sites compiled into this binary (the catalogue the
  /// chaos suite must cover).
  static const std::vector<std::string>& KnownSites();

  /// Evaluates one hit of `site`. Returns OK when the site is not
  /// armed, passes its probability draw, or finishes its delay;
  /// returns `Internal("failpoint '<site>' fired")` when it fails.
  /// Callers normally reach this through SURF_FAILPOINT/MaybeFailpoint
  /// so the idle registry costs only the `active()` load.
  Status Hit(const char* site);

 private:
  struct Armed {
    FailpointSpec spec;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  FailpointRegistry();

  /// Number of armed failpoints across the process (the hot-path gate).
  static std::atomic<int> active_count_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Armed> armed_;
  uint64_t seed_ = 0;
};

/// Hit helper for sites without a Status return channel: OK unless the
/// armed site fails this hit.
inline Status MaybeFailpoint(const char* site) {
  if (!FailpointRegistry::active()) return Status::OK();
  return FailpointRegistry::Global().Hit(site);
}

/// Guards a Status/StatusOr-returning function: when the named site
/// fires, the function returns the injected status. Compiles to a
/// single relaxed load + never-taken branch while the registry is idle.
#define SURF_FAILPOINT(site)                                   \
  do {                                                         \
    if (::surf::FailpointRegistry::active()) {                 \
      ::surf::Status _surf_fp_status =                         \
          ::surf::FailpointRegistry::Global().Hit(site);       \
      if (!_surf_fp_status.ok()) return _surf_fp_status;       \
    }                                                          \
  } while (0)

}  // namespace surf

#endif  // SURF_UTIL_FAILPOINT_H_
