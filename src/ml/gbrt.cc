#include "ml/gbrt.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>

#include "ml/metrics.h"
#include "util/summary.h"

namespace surf {

std::string GbrtParams::ToString() const {
  std::ostringstream os;
  os << "lr=" << learning_rate << " trees=" << n_estimators
     << " depth=" << max_depth << " lambda=" << reg_lambda;
  return os.str();
}

Status GradientBoostedTrees::Fit(const FeatureMatrix& x,
                                 const std::vector<double>& y) {
  if (x.num_rows() == 0) {
    return Status::InvalidArgument("empty training matrix");
  }
  if (x.num_rows() != y.size()) {
    return Status::InvalidArgument("feature/target row mismatch");
  }
  for (double v : y) {
    if (std::isnan(v)) {
      return Status::InvalidArgument("NaN target in training data");
    }
  }

  trees_.clear();
  train_curve_.clear();
  num_features_ = x.num_features();
  Rng rng(params_.seed);

  // Optional validation holdout for early stopping.
  std::vector<size_t> train_rows(x.num_rows());
  std::iota(train_rows.begin(), train_rows.end(), 0);
  std::vector<size_t> valid_rows;
  if (params_.early_stopping_rounds > 0 &&
      params_.validation_fraction > 0.0 && x.num_rows() >= 10) {
    rng.Shuffle(&train_rows);
    const size_t n_valid = std::max<size_t>(
        1, static_cast<size_t>(params_.validation_fraction *
                               static_cast<double>(x.num_rows())));
    valid_rows.assign(train_rows.end() - static_cast<long>(n_valid),
                      train_rows.end());
    train_rows.resize(train_rows.size() - n_valid);
  }

  base_score_ = 0.0;
  for (size_t r : train_rows) base_score_ += y[r];
  base_score_ /= static_cast<double>(train_rows.size());

  const FeatureBinner binner(x, params_.max_bins);
  const auto binned = binner.BinMatrix(x);

  std::vector<double> pred(x.num_rows(), base_score_);
  std::vector<double> grad(x.num_rows()), hess(x.num_rows(), 1.0);

  TreeParams tree_params;
  tree_params.max_depth = params_.max_depth;
  tree_params.min_samples_leaf = params_.min_samples_leaf;
  tree_params.min_child_weight = params_.min_child_weight;
  tree_params.reg_lambda = params_.reg_lambda;
  tree_params.min_split_gain = params_.min_split_gain;
  tree_params.colsample = params_.colsample;

  double best_valid_rmse = std::numeric_limits<double>::infinity();
  size_t rounds_since_best = 0;
  size_t best_round = 0;

  std::vector<size_t> tree_rows;
  for (size_t round = 0; round < params_.n_estimators; ++round) {
    // Squared loss: g = pred − y, h = 1.
    for (size_t r : train_rows) grad[r] = pred[r] - y[r];

    // Row subsampling.
    if (params_.subsample < 1.0) {
      tree_rows.clear();
      for (size_t r : train_rows) {
        if (rng.Bernoulli(params_.subsample)) tree_rows.push_back(r);
      }
      if (tree_rows.empty()) tree_rows = train_rows;
    } else {
      tree_rows = train_rows;
    }

    RegressionTree tree;
    tree.Fit(binned, binner, grad, hess, tree_rows, tree_params, &rng);

    // Update predictions for all rows (train + validation).
    std::vector<double> row_buf(num_features_);
    for (size_t r = 0; r < x.num_rows(); ++r) {
      for (size_t j = 0; j < num_features_; ++j) row_buf[j] = x.Get(r, j);
      pred[r] += params_.learning_rate * tree.Predict(row_buf.data());
    }
    trees_.push_back(std::move(tree));

    // Learning curve on the training rows.
    double se = 0.0;
    for (size_t r : train_rows) se += (pred[r] - y[r]) * (pred[r] - y[r]);
    train_curve_.push_back(
        std::sqrt(se / static_cast<double>(train_rows.size())));

    // Early stopping.
    if (!valid_rows.empty()) {
      double vse = 0.0;
      for (size_t r : valid_rows) vse += (pred[r] - y[r]) * (pred[r] - y[r]);
      const double vrmse =
          std::sqrt(vse / static_cast<double>(valid_rows.size()));
      if (vrmse + 1e-12 < best_valid_rmse) {
        best_valid_rmse = vrmse;
        best_round = round;
        rounds_since_best = 0;
      } else if (++rounds_since_best >= params_.early_stopping_rounds) {
        trees_.resize(best_round + 1);
        break;
      }
    }
  }

  trained_ = true;
  return Status::OK();
}

Status GradientBoostedTrees::ContinueFit(const FeatureMatrix& x,
                                         const std::vector<double>& y,
                                         size_t extra_trees) {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  if (x.num_features() != num_features_) {
    return Status::InvalidArgument("feature width mismatch");
  }
  if (x.num_rows() == 0 || x.num_rows() != y.size()) {
    return Status::InvalidArgument("empty or mismatched update batch");
  }
  for (double v : y) {
    if (std::isnan(v)) {
      return Status::InvalidArgument("NaN target in update batch");
    }
  }

  Rng rng(params_.seed + trees_.size());
  const FeatureBinner binner(x, params_.max_bins);
  const auto binned = binner.BinMatrix(x);

  std::vector<double> pred = PredictBatch(x);
  std::vector<double> grad(x.num_rows()), hess(x.num_rows(), 1.0);
  std::vector<size_t> rows(x.num_rows());
  std::iota(rows.begin(), rows.end(), 0);

  TreeParams tree_params;
  tree_params.max_depth = params_.max_depth;
  tree_params.min_samples_leaf = params_.min_samples_leaf;
  tree_params.min_child_weight = params_.min_child_weight;
  tree_params.reg_lambda = params_.reg_lambda;
  tree_params.min_split_gain = params_.min_split_gain;
  tree_params.colsample = params_.colsample;

  std::vector<double> row_buf(num_features_);
  for (size_t round = 0; round < extra_trees; ++round) {
    for (size_t r = 0; r < x.num_rows(); ++r) grad[r] = pred[r] - y[r];
    RegressionTree tree;
    tree.Fit(binned, binner, grad, hess, rows, tree_params, &rng);
    for (size_t r = 0; r < x.num_rows(); ++r) {
      for (size_t j = 0; j < num_features_; ++j) row_buf[j] = x.Get(r, j);
      pred[r] += params_.learning_rate * tree.Predict(row_buf.data());
    }
    trees_.push_back(std::move(tree));

    double se = 0.0;
    for (size_t r = 0; r < x.num_rows(); ++r) {
      se += (pred[r] - y[r]) * (pred[r] - y[r]);
    }
    train_curve_.push_back(
        std::sqrt(se / static_cast<double>(x.num_rows())));
  }
  return Status::OK();
}

double GradientBoostedTrees::Predict(const std::vector<double>& x) const {
  assert(trained_);
  assert(x.size() == num_features_);
  double out = base_score_;
  for (const auto& tree : trees_) {
    out += params_.learning_rate * tree.Predict(x.data());
  }
  return out;
}

std::vector<double> GradientBoostedTrees::PredictBatch(
    const FeatureMatrix& x) const {
  assert(trained_);
  std::vector<double> out(x.num_rows(), base_score_);
  std::vector<double> row(num_features_);
  for (size_t r = 0; r < x.num_rows(); ++r) {
    for (size_t j = 0; j < num_features_; ++j) row[j] = x.Get(r, j);
    double acc = base_score_;
    for (const auto& tree : trees_) {
      acc += params_.learning_rate * tree.Predict(row.data());
    }
    out[r] = acc;
  }
  return out;
}

Status GradientBoostedTrees::Save(const std::string& path) const {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  std::ofstream os(path);
  if (!os) return Status::IOError("cannot write " + path);
  os.precision(17);
  os << "surf-gbrt-v1\n";
  os << num_features_ << " " << base_score_ << " " << params_.learning_rate
     << " " << trees_.size() << "\n";
  for (const auto& tree : trees_) tree.Serialize(os);
  if (!os) return Status::IOError("short write to " + path);
  return Status::OK();
}

StatusOr<GradientBoostedTrees> GradientBoostedTrees::Load(
    const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IOError("cannot open " + path);
  std::string magic;
  is >> magic;
  if (magic != "surf-gbrt-v1") {
    return Status::IOError("bad model header in " + path);
  }
  GradientBoostedTrees model;
  size_t n_trees = 0;
  is >> model.num_features_ >> model.base_score_ >>
      model.params_.learning_rate >> n_trees;
  if (!is) return Status::IOError("truncated model file " + path);
  model.trees_.reserve(n_trees);
  for (size_t t = 0; t < n_trees; ++t) {
    model.trees_.push_back(RegressionTree::Deserialize(is));
  }
  if (!is) return Status::IOError("truncated model file " + path);
  model.params_.n_estimators = n_trees;
  model.trained_ = true;
  return model;
}

}  // namespace surf
