// Generic (portable scalar) kernel backend, and the single definitions
// of the shared scalar helpers every vector backend defers to. This TU
// is compiled with baseline flags only: no wide ISA, no FP contraction —
// it IS the bit-identity reference the differential harness compares
// the vector backends against.

#include "accel/kernels_detail.h"

namespace surf {
namespace accel_detail {

void TreePredictRows(const AccelTreeNode* nodes, const double* values,
                     const double* const* cols, size_t begin, size_t end,
                     double scale, double* out) {
  for (size_t r = begin; r < end; ++r) {
    int32_t idx = 0;
    for (;;) {
      const AccelTreeNode& node = nodes[static_cast<size_t>(idx)];
      const int32_t next =
          cols[node.feature][r] <= node.tv ? idx + 1 : node.right;
      if (next == idx) {
        out[r - begin] += scale * values[idx];
        break;
      }
      idx = next;
    }
  }
}

void MaskRangeTail(const double* col, size_t r0, size_t n, double lo,
                   double hi, uint8_t* mask) {
  for (size_t r = r0; r < n; ++r) {
    mask[r] &= static_cast<uint8_t>(!(col[r] < lo)) &
               static_cast<uint8_t>(!(col[r] > hi));
  }
}

uint64_t MaskCountTail(const uint8_t* mask, size_t r0, size_t n) {
  uint64_t sum = 0;
  for (size_t r = r0; r < n; ++r) sum += mask[r];
  return sum;
}

void HistU8UnitRef(const uint8_t* bins, const uint32_t* row_ids,
                   const double* grad, size_t n, uint32_t num_bins,
                   double* g, uint32_t* cnt) {
  // Plain ascending row order, shared by every backend (see kernels.h
  // for why the vector variants were measured out).
  (void)num_bins;
  if (row_ids == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      const uint8_t b = bins[i];
      g[b] += grad[i];
      ++cnt[b];
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      const uint8_t b = bins[row_ids[i]];
      g[b] += grad[i];
      ++cnt[b];
    }
  }
}

void TreePredictRef(const AccelTreeNode* nodes, const double* values,
                    size_t levels, const double* const* cols, size_t begin,
                    size_t end, double scale, double* out) {
  // Interleave 8 rows through the tree at once: each level is one
  // dependent load-compare-select per row, so eight independent chains
  // overlap instead of serializing. Leaves self-select, letting every
  // row run the same fixed number of levels branch-free.
  constexpr size_t kGroup = 8;
  size_t r = begin;
  if (levels > 0) {
    for (; r + kGroup <= end; r += kGroup) {
      int32_t idx[kGroup] = {0};
      for (size_t lvl = 0; lvl < levels; ++lvl) {
        for (size_t k = 0; k < kGroup; ++k) {
          const AccelTreeNode& node = nodes[static_cast<size_t>(idx[k])];
          // Branch-free masked select (a ternary here compiles to a
          // data-dependent branch that mispredicts ~50% of the time at
          // deep levels); leaves self-loop via the always-false NaN
          // compare.
          const int32_t mask =
              -static_cast<int32_t>(cols[node.feature][r + k] <= node.tv);
          idx[k] = (node.right & ~mask) | ((idx[k] + 1) & mask);
        }
      }
      for (size_t k = 0; k < kGroup; ++k) {
        out[r + k - begin] += scale * values[idx[k]];
      }
    }
  }
  // The tail walker writes relative to ITS begin — hand it the output
  // slot of row r, not the block base.
  TreePredictRows(nodes, values, cols, r, end, scale, out + (r - begin));
}

void MaskRangeRef(const double* col, size_t n, double lo, double hi,
                  uint8_t* mask) {
  MaskRangeTail(col, 0, n, lo, hi, mask);
}

uint64_t MaskCountRef(const uint8_t* mask, size_t n) {
  return MaskCountTail(mask, 0, n);
}

}  // namespace accel_detail

const AccelOps kAccelGenericOps = {
    /*backend=*/0,
    /*name=*/"generic",
    accel_detail::HistU8UnitRef,
    accel_detail::TreePredictRef,
    accel_detail::MaskRangeRef,
    accel_detail::MaskCountRef,
};

}  // namespace surf
