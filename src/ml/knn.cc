#include "ml/knn.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/summary.h"

namespace surf {

Status KnnRegressor::Fit(const FeatureMatrix& x,
                         const std::vector<double>& y) {
  const size_t n = x.num_rows();
  const size_t p = x.num_features();
  if (n == 0) return Status::InvalidArgument("empty training matrix");
  if (n != y.size()) {
    return Status::InvalidArgument("feature/target row mismatch");
  }
  if (k_ == 0) return Status::InvalidArgument("k must be positive");

  mean_.assign(p, 0.0);
  scale_.assign(p, 1.0);
  for (size_t j = 0; j < p; ++j) {
    mean_[j] = Mean(x.feature(j));
    double s = 0.0;
    for (double v : x.feature(j)) s += (v - mean_[j]) * (v - mean_[j]);
    scale_[j] = std::sqrt(s / static_cast<double>(n));
    if (scale_[j] <= 1e-12) scale_[j] = 1.0;
  }

  train_x_ = FeatureMatrix(p);
  train_x_.Reserve(n);
  std::vector<double> row(p);
  for (size_t r = 0; r < n; ++r) {
    for (size_t j = 0; j < p; ++j) {
      row[j] = (x.Get(r, j) - mean_[j]) / scale_[j];
    }
    train_x_.AddRow(row);
  }
  train_y_ = y;
  trained_ = true;
  return Status::OK();
}

double KnnRegressor::Predict(const std::vector<double>& x) const {
  assert(trained_);
  assert(x.size() == mean_.size());
  const size_t n = train_x_.num_rows();
  const size_t p = mean_.size();
  const size_t k = std::min(k_, n);

  std::vector<double> q(p);
  for (size_t j = 0; j < p; ++j) q[j] = (x[j] - mean_[j]) / scale_[j];

  std::vector<std::pair<double, size_t>> dist(n);
  for (size_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (size_t j = 0; j < p; ++j) {
      const double d = train_x_.Get(r, j) - q[j];
      s += d * d;
    }
    dist[r] = {s, r};
  }
  std::nth_element(dist.begin(), dist.begin() + static_cast<long>(k - 1),
                   dist.end());

  if (!distance_weighted_) {
    double sum = 0.0;
    for (size_t i = 0; i < k; ++i) sum += train_y_[dist[i].second];
    return sum / static_cast<double>(k);
  }
  double wsum = 0.0, sum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (std::sqrt(dist[i].first) + 1e-9);
    wsum += w;
    sum += w * train_y_[dist[i].second];
  }
  return sum / wsum;
}

}  // namespace surf
