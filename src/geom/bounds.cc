#include "geom/bounds.h"

#include <algorithm>
#include <cassert>

namespace surf {

Bounds::Bounds(std::vector<double> lo, std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  assert(lo_.size() == hi_.size());
  for (size_t i = 0; i < lo_.size(); ++i) assert(lo_[i] <= hi_[i]);
}

Bounds Bounds::Unit(size_t dims) {
  return Bounds(std::vector<double>(dims, 0.0), std::vector<double>(dims, 1.0));
}

double Bounds::MaxExtent() const {
  double m = 0.0;
  for (size_t i = 0; i < dims(); ++i) m = std::max(m, Extent(i));
  return m;
}

void Bounds::Extend(const std::vector<double>& a) {
  if (lo_.empty()) {
    lo_ = a;
    hi_ = a;
    return;
  }
  assert(a.size() == dims());
  for (size_t i = 0; i < dims(); ++i) {
    lo_[i] = std::min(lo_[i], a[i]);
    hi_[i] = std::max(hi_[i], a[i]);
  }
}

bool Bounds::Contains(const std::vector<double>& a) const {
  assert(a.size() == dims());
  for (size_t i = 0; i < dims(); ++i) {
    if (a[i] < lo_[i] || a[i] > hi_[i]) return false;
  }
  return true;
}

Region Bounds::AsRegion() const { return Region::FromCorners(lo_, hi_); }

}  // namespace surf
