#include "util/string_util.h"

#include <cctype>
#include <cstdio>
#include <cstdint>
#include <cstring>

namespace surf {

std::vector<std::string> SplitString(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == delim) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string TrimString(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  return s;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string DoubleToHex(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

bool DoubleFromHex(const std::string& s, double* out) {
  if (s.size() != 18 || s[0] != '0' || s[1] != 'x') return false;
  uint64_t bits = 0;
  for (size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    uint64_t nibble = 0;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    bits = (bits << 4) | nibble;
  }
  std::memcpy(out, &bits, sizeof(bits));
  return true;
}

}  // namespace surf
