#include "opt/naive_search.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/stopwatch.h"

namespace surf {

NaiveSearchResult NaiveSearch::Run(const RegionObjective& objective,
                                   const RegionSolutionSpace& space) const {
  const size_t d = space.dims();
  const size_t n = std::max<size_t>(1, params_.centers_per_dim);
  const size_t m = std::max<size_t>(1, params_.sizes_per_dim);
  const size_t per_dim = n * m;

  NaiveSearchResult result;
  result.total_candidates = 1;
  for (size_t i = 0; i < d; ++i) {
    // Guard against overflow for large d.
    if (result.total_candidates > (UINT64_MAX / per_dim)) {
      result.total_candidates = UINT64_MAX;
      break;
    }
    result.total_candidates *= per_dim;
  }

  // Pre-compute the per-dimension candidate centers and half-lengths.
  std::vector<std::vector<double>> centers(d), lengths(d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t a = 0; a < n; ++a) {
      const double t = n == 1 ? 0.5
                              : static_cast<double>(a) /
                                    static_cast<double>(n - 1);
      centers[i].push_back(space.bounds.lo(i) + t * space.bounds.Extent(i));
    }
    for (size_t b = 0; b < m; ++b) {
      const double t = m == 1 ? 0.5
                              : static_cast<double>(b) /
                                    static_cast<double>(m - 1);
      lengths[i].push_back(space.min_half_length +
                           t * (space.max_half_length -
                                space.min_half_length));
    }
  }

  Stopwatch timer;
  std::vector<size_t> odo(d, 0);  // per-dim combined (center, size) index
  std::vector<double> center(d), half(d);

  // Candidates are scored in chunks through the objective's batched path:
  // one surrogate PredictBatch per chunk instead of one tree-walk per
  // grid cell. Budgets are re-checked between chunks.
  constexpr size_t kChunk = 256;
  std::vector<Region> chunk;
  std::vector<double> chunk_stats;
  chunk.reserve(kChunk);
  bool exhausted = false;
  while (!exhausted) {
    chunk.clear();
    size_t limit = kChunk;
    if (params_.max_evaluations > 0) {
      const uint64_t remaining = params_.max_evaluations - result.examined;
      limit = std::min<uint64_t>(limit, remaining);
    }
    while (chunk.size() < limit) {
      // Decode the odometer into a region.
      for (size_t i = 0; i < d; ++i) {
        center[i] = centers[i][odo[i] / m];
        half[i] = lengths[i][odo[i] % m];
      }
      chunk.emplace_back(center, half);

      // Advance the odometer.
      size_t i = d;
      bool done = true;
      while (i > 0) {
        --i;
        if (odo[i] + 1 < per_dim) {
          ++odo[i];
          for (size_t k = i + 1; k < d; ++k) odo[k] = 0;
          done = false;
          break;
        }
      }
      if (done) {
        exhausted = true;
        break;
      }
    }
    if (chunk.empty()) break;

    const std::vector<FitnessValue> evals =
        objective.EvaluateMany(chunk, &chunk_stats);
    result.examined += chunk.size();
    for (size_t i = 0; i < chunk.size(); ++i) {
      if (!evals[i].valid) continue;
      ScoredRegion scored;
      scored.region = chunk[i];
      scored.fitness = evals[i].value;
      scored.statistic = chunk_stats[i];
      result.viable.push_back(std::move(scored));
    }

    if (params_.time_budget_seconds > 0.0 &&
        timer.ElapsedSeconds() > params_.time_budget_seconds) {
      result.timed_out = true;
      break;
    }
    if (params_.max_evaluations > 0 &&
        result.examined >= params_.max_evaluations) {
      result.timed_out = result.examined < result.total_candidates;
      break;
    }
  }
  result.elapsed_seconds = timer.ElapsedSeconds();
  return result;
}

std::vector<ScoredRegion> SelectDistinctRegions(
    std::vector<ScoredRegion> candidates, double max_iou,
    size_t max_regions) {
  std::sort(candidates.begin(), candidates.end(),
            [](const ScoredRegion& a, const ScoredRegion& b) {
              return a.fitness > b.fitness;
            });
  std::vector<ScoredRegion> kept;
  std::vector<double> center;
  for (auto& cand : candidates) {
    if (kept.size() >= max_regions) break;
    center.assign(cand.region.dims(), 0.0);
    for (size_t j = 0; j < cand.region.dims(); ++j) {
      center[j] = cand.region.center(j);
    }
    bool overlaps = false;
    std::vector<double> kept_center(cand.region.dims());
    for (const auto& k : kept) {
      // A candidate is a duplicate of a better region when they overlap
      // heavily OR when the boxes mutually contain each other's centers
      // — the latter catches shifted near-copies of the same basin
      // whose IoU dips just under the ceiling. Requiring containment
      // both ways keeps genuinely distinct discoveries (e.g. a large
      // region whose center merely falls inside a small unrelated
      // hotspot) reportable.
      for (size_t j = 0; j < k.region.dims(); ++j) {
        kept_center[j] = k.region.center(j);
      }
      if (cand.region.IoU(k.region) > max_iou ||
          (k.region.Contains(center) &&
           cand.region.Contains(kept_center))) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) kept.push_back(std::move(cand));
  }
  return kept;
}

}  // namespace surf
