// Tests for the serving layer: fingerprinting, the surrogate cache
// (keying, single-flight training, LRU/staleness eviction), warm-start
// swaps, and the MiningService front end.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <optional>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "serve/fingerprint.h"
#include "serve/mining_service.h"
#include "serve/surrogate_cache.h"
#include "util/failpoint.h"

namespace surf {
namespace {

SyntheticDataset DensityData(size_t dims, size_t k, uint64_t seed = 42) {
  SyntheticSpec spec;
  spec.dims = dims;
  spec.num_gt_regions = k;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.num_background = 6000;
  spec.seed = seed;
  return SyntheticGenerator::Generate(spec);
}

/// A request with a small (fast) training recipe.
MineRequest SmallRequest(const std::string& dataset_name, double threshold) {
  MineRequest request;
  request.dataset = dataset_name;
  request.statistic = Statistic::Count({0, 1});
  request.threshold = threshold;
  request.workload.num_queries = 800;
  request.surrogate.gbrt.n_estimators = 30;
  request.surrogate.gbrt.max_depth = 4;
  request.finder.gso.max_iterations = 25;
  request.finder.gso.num_glowworms = 60;
  request.finder.auto_scale_gso = false;
  return request;
}

// ----------------------------------------------------------- Fingerprint

TEST(FingerprintTest, DatasetFingerprintIsContentSensitive) {
  const SyntheticDataset ds = DensityData(2, 1);
  const uint64_t fp = FingerprintDataset(ds.data);
  EXPECT_EQ(fp, FingerprintDataset(ds.data));  // deterministic

  Dataset copy = ds.data;
  copy.Set(0, 0, copy.Get(0, 0) + 1.0);
  EXPECT_NE(fp, FingerprintDataset(copy));  // first-row edits visible

  Dataset appended = ds.data;
  appended.AddRow(appended.Row(0));
  EXPECT_NE(fp, FingerprintDataset(appended));  // row count visible

  const SyntheticDataset other = DensityData(2, 1, 43);
  EXPECT_NE(fp, FingerprintDataset(other.data));
}

TEST(FingerprintTest, KeyComponentsAreIndependent) {
  const SyntheticDataset ds = DensityData(2, 1);
  WorkloadParams workload;
  SurrogateTrainOptions options;
  const SurrogateKey base = MakeSurrogateKey(ds.data, Statistic::Count({0, 1}),
                                             workload, options);
  EXPECT_EQ(base, MakeSurrogateKey(ds.data, Statistic::Count({0, 1}),
                                   workload, options));

  // A different statistic moves only the statistic component.
  const SurrogateKey stat_key = MakeSurrogateKey(
      ds.data, Statistic::Average({0, 1}, 1), workload, options);
  EXPECT_EQ(base.dataset, stat_key.dataset);
  EXPECT_NE(base.statistic, stat_key.statistic);

  // A different workload recipe moves only the workload component.
  WorkloadParams workload2 = workload;
  workload2.num_queries += 1;
  const SurrogateKey wl_key = MakeSurrogateKey(
      ds.data, Statistic::Count({0, 1}), workload2, options);
  EXPECT_EQ(base.statistic, wl_key.statistic);
  EXPECT_NE(base.workload, wl_key.workload);

  // A different GBRT recipe moves only the model component.
  SurrogateTrainOptions options2 = options;
  options2.gbrt.max_depth += 1;
  const SurrogateKey model_key = MakeSurrogateKey(
      ds.data, Statistic::Count({0, 1}), workload, options2);
  EXPECT_EQ(base.workload, model_key.workload);
  EXPECT_NE(base.model, model_key.model);

  // Runtime-only knobs do not move the key.
  SurrogateTrainOptions options3 = options;
  options3.gbrt.num_threads = 8;
  EXPECT_EQ(base, MakeSurrogateKey(ds.data, Statistic::Count({0, 1}),
                                   workload, options3));
}

// ----------------------------------------------------------------- Cache

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = DensityData(2, 1);
    MiningService::Options options;
    options.num_threads = 4;
    options.cache.capacity = 4;
    ASSERT_TRUE(
        service_.emplace(options).RegisterDataset("d", data_.data).ok());
  }

  MiningService& service() { return *service_; }

  SyntheticDataset data_;
  std::optional<MiningService> service_;
};

TEST_F(ServiceTest, CacheHitAndMissKeying) {
  MineRequest request = SmallRequest("d", 500.0);
  const MineResponse first = service().Mine(request);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.cache_hit);

  // Same key, different threshold: threshold is per-request search
  // configuration, not part of the key.
  request.threshold = 800.0;
  const MineResponse second = service().Mine(request);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(service().cache().size(), 1u);

  // A different GBRT recipe is a different key.
  MineRequest other = request;
  other.surrogate.gbrt.n_estimators = 31;
  const MineResponse third = service().Mine(other);
  ASSERT_TRUE(third.status.ok());
  EXPECT_FALSE(third.cache_hit);
  EXPECT_EQ(service().cache().size(), 2u);

  const SurrogateCache::Stats stats = service().cache().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST_F(ServiceTest, ProvenanceIsDeclared) {
  const MineResponse response = service().Mine(SmallRequest("d", 500.0));
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.provenance.dataset_fingerprint,
            FingerprintDataset(data_.data));
  EXPECT_GT(response.provenance.training_set_size, 0u);
  EXPECT_GT(response.provenance.holdout_rmse, 0.0);
  EXPECT_GT(response.provenance.train_seconds, 0.0);
  EXPECT_EQ(response.provenance.warm_starts, 0u);
  EXPECT_TRUE(std::isnan(response.provenance.cv_rmse));  // CV off by default
}

TEST(ServiceCvTest, ProvenanceCvRmseWhenEnabled) {
  const SyntheticDataset ds = DensityData(2, 1);
  MiningService::Options options;
  options.provenance_cv_folds = 3;
  MiningService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", ds.data).ok());
  const MineResponse response = service.Mine(SmallRequest("d", 500.0));
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(std::isfinite(response.provenance.cv_rmse));
  EXPECT_GT(response.provenance.cv_rmse, 0.0);
}

TEST_F(ServiceTest, ConcurrentIdenticalRequestsTrainExactlyOnce) {
  const MineRequest request = SmallRequest("d", 500.0);
  const std::vector<MineRequest> requests(32, request);
  const std::vector<MineResponse> responses = service().MineBatch(requests);
  ASSERT_EQ(responses.size(), 32u);

  size_t misses = 0;
  for (const auto& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    if (!response.cache_hit) ++misses;
  }
  // Single-flight: exactly one request paid for training; everyone else
  // either joined the in-flight fit or hit the published entry.
  EXPECT_EQ(misses, 1u);
  EXPECT_EQ(service().cache().size(), 1u);
  EXPECT_EQ(service().cache().stats().misses, 1u);
  EXPECT_EQ(service().cache().stats().hits, 31u);

  // Deterministic engine + shared model: every response reports the same
  // regions.
  ASSERT_FALSE(responses[0].result.regions.empty());
  for (const auto& response : responses) {
    ASSERT_EQ(response.result.regions.size(),
              responses[0].result.regions.size());
    for (size_t i = 0; i < response.result.regions.size(); ++i) {
      EXPECT_EQ(response.result.regions[i].estimate,
                responses[0].result.regions[i].estimate);
    }
  }
}

TEST_F(ServiceTest, LruEvictionUnderCapacity) {
  // Capacity is 4; six distinct keys must evict the two least recently
  // used entries.
  std::vector<MineRequest> requests;
  for (int i = 0; i < 6; ++i) {
    MineRequest request = SmallRequest("d", 500.0);
    request.workload.seed = 100 + i;  // distinct key per request
    requests.push_back(request);
  }
  for (const auto& request : requests) {
    ASSERT_TRUE(service().Mine(request).status.ok());
  }
  EXPECT_EQ(service().cache().size(), 4u);
  EXPECT_EQ(service().cache().stats().evictions, 2u);

  // The two oldest keys (seeds 100, 101) were evicted: mining them again
  // is a miss. The newest (seed 105) is still resident: a hit.
  EXPECT_TRUE(service().Mine(requests[5]).cache_hit);
  EXPECT_FALSE(service().Mine(requests[0]).cache_hit);
}

TEST(StaleCacheTest, StaleEntriesRetrain) {
  const SyntheticDataset ds = DensityData(2, 1);
  MiningService::Options options;
  options.cache.max_age_seconds = 0.0;  // everything is stale immediately
  MiningService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", ds.data).ok());
  const MineRequest request = SmallRequest("d", 500.0);
  EXPECT_FALSE(service.Mine(request).cache_hit);
  EXPECT_FALSE(service.Mine(request).cache_hit);  // stale -> retrained
  EXPECT_EQ(service.cache().stats().stale_evictions, 1u);
}

// ------------------------------------------------------------ Warm start

TEST_F(ServiceTest, WarmStartSwapServesConsistentResultsMidRetrain) {
  MineRequest request = SmallRequest("d", 500.0);
  const MineResponse first = service().Mine(request);
  ASSERT_TRUE(first.status.ok());

  auto key = service().KeyFor(request);
  ASSERT_TRUE(key.ok());
  auto entry = service().cache().Peek(*key);
  ASSERT_NE(entry, nullptr);
  const SurrogateSnapshot before = entry->Snapshot();

  // Label a fresh batch of evaluations with the true statistic.
  ScanEvaluator evaluator(&data_.data, request.statistic);
  WorkloadParams fresh_params;
  fresh_params.num_queries = 600;
  fresh_params.seed = 77;
  const RegionWorkload fresh = GenerateWorkload(
      evaluator, data_.data.ComputeBounds({0, 1}), fresh_params);

  // Readers snapshot concurrently while appends push the entry past the
  // retrain threshold (512): every observed model must be internally
  // consistent (either the old or the new one, never a half-retrained
  // state), which EvaluateMany would crash/garble on if the model were
  // mutated in place.
  std::atomic<bool> stop{false};
  Rng probe_rng(5);
  const Region probe = before.space.Sample(&probe_rng);
  const double before_value = before.surrogate->Predict(probe);
  std::vector<double> observed;
  std::thread reader([&] {
    while (!stop.load()) {
      const SurrogateSnapshot snap = entry->Snapshot();
      observed.push_back(snap.surrogate->Predict(probe));
    }
  });

  ASSERT_TRUE(entry->Append(fresh).ok());
  stop.store(true);
  reader.join();

  const SurrogateSnapshot after = entry->Snapshot();
  // The threshold (512 < 600) was crossed: the swap happened. The
  // refreshed model trained on ~80% of the batch (the rest is held out
  // to re-measure the declared holdout RMSE).
  EXPECT_EQ(after.provenance.warm_starts, 1u);
  EXPECT_EQ(after.provenance.pending_examples, 0u);
  EXPECT_GT(after.provenance.training_set_size,
            before.provenance.training_set_size);
  EXPECT_LT(after.provenance.training_set_size,
            before.provenance.training_set_size + fresh.size());
  EXPECT_GT(after.provenance.holdout_rmse, 0.0);
  // The old snapshot still serves its original answer (copy-on-write).
  EXPECT_EQ(before.surrogate->Predict(probe), before_value);
  const double after_value = after.surrogate->Predict(probe);
  // Every concurrently observed prediction came from one of the two
  // models — no torn state.
  for (double v : observed) {
    EXPECT_TRUE(v == before_value || v == after_value)
        << "torn read: " << v << " vs " << before_value << "/"
        << after_value;
  }
}

TEST_F(ServiceTest, AppendBelowThresholdOnlyAccumulates) {
  MineRequest request = SmallRequest("d", 500.0);
  ASSERT_TRUE(service().Mine(request).status.ok());

  ScanEvaluator evaluator(&data_.data, request.statistic);
  WorkloadParams fresh_params;
  fresh_params.num_queries = 100;  // below the 512 default threshold
  fresh_params.seed = 78;
  const RegionWorkload fresh = GenerateWorkload(
      evaluator, data_.data.ComputeBounds({0, 1}), fresh_params);
  ASSERT_TRUE(service().AppendEvaluations(request, fresh).ok());

  auto key = service().KeyFor(request);
  ASSERT_TRUE(key.ok());
  const SurrogateProvenance provenance =
      service().cache().Peek(*key)->provenance();
  EXPECT_EQ(provenance.warm_starts, 0u);
  EXPECT_EQ(provenance.pending_examples, fresh.size());
}

TEST_F(ServiceTest, AppendRejectsMismatchedFeatureWidth) {
  MineRequest request = SmallRequest("d", 500.0);
  ASSERT_TRUE(service().Mine(request).status.ok());

  RegionWorkload bad;
  bad.features = FeatureMatrix(6);  // model expects 2*d = 4
  bad.features.AddRow({0.0, 0.0, 0.0, 1.0, 1.0, 1.0});
  bad.targets.push_back(1.0);
  EXPECT_EQ(service().AppendEvaluations(request, bad).code(),
            StatusCode::kInvalidArgument);

  // The entry is not poisoned: a correctly shaped append still lands.
  ScanEvaluator evaluator(&data_.data, request.statistic);
  WorkloadParams fresh_params;
  fresh_params.num_queries = 50;
  fresh_params.seed = 79;
  const RegionWorkload good = GenerateWorkload(
      evaluator, data_.data.ComputeBounds({0, 1}), fresh_params);
  EXPECT_TRUE(service().AppendEvaluations(request, good).ok());
  auto key = service().KeyFor(request);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(service().cache().Peek(*key)->provenance().pending_examples,
            good.size());
}

// --------------------------------------------------------------- Service

TEST_F(ServiceTest, TopKModeServesFromTheSameCache) {
  MineRequest request = SmallRequest("d", 0.0);
  request.mode = MineRequest::Mode::kTopK;
  request.topk.k = 3;
  request.topk.gso.max_iterations = 25;
  request.topk.gso.num_glowworms = 60;
  const MineResponse response = service().Mine(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.topk.regions.empty());
  EXPECT_LE(response.topk.regions.size(), 3u);

  // A threshold request with the same training recipe hits the same
  // entry.
  EXPECT_TRUE(service().Mine(SmallRequest("d", 500.0)).cache_hit);
}

TEST_F(ServiceTest, ErrorsAreReportedPerRequest) {
  MineRequest missing = SmallRequest("nope", 500.0);
  EXPECT_EQ(service().Mine(missing).status.code(), StatusCode::kNotFound);

  MineRequest bad_cols = SmallRequest("d", 500.0);
  bad_cols.statistic = Statistic::Count({0, 9});
  EXPECT_EQ(service().Mine(bad_cols).status.code(),
            StatusCode::kInvalidArgument);

  // A failed training does not leave a poisoned entry behind.
  EXPECT_EQ(service().cache().size(), 0u);
}

TEST_F(ServiceTest, DuplicateDatasetRegistrationFails) {
  EXPECT_EQ(service().RegisterDataset("d", data_.data).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(service().dataset_names(), std::vector<std::string>{"d"});
}

// ------------------------------------------- training-failure handling

/// Disarms every failpoint on exit so the process-wide registry never
/// leaks injected faults into other tests.
struct FailpointGuard {
  ~FailpointGuard() { FailpointRegistry::Global().ClearAll(); }
};

TEST(CacheFailureTest, FailurePropagatesToEveryWaiterAndLeavesNoEntry) {
  const SyntheticDataset ds = DensityData(2, 1);
  SurrogateCache cache(SurrogateCache::Options{});
  const SurrogateKey key = MakeSurrogateKey(
      ds.data, Statistic::Count({0, 1}), WorkloadParams{},
      SurrogateTrainOptions{});

  std::atomic<int> factory_runs{0};
  const SurrogateCache::Factory failing =
      [&]() -> StatusOr<TrainedSurrogate> {
    ++factory_runs;
    // Hold the single-flight open long enough for the waiters below to
    // join the in-flight training before it fails.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    return Status::Internal("gbrt training exploded");
  };

  std::vector<Status> results(5, Status::OK());
  std::vector<std::thread> threads;
  for (size_t i = 0; i < results.size(); ++i) {
    threads.emplace_back([&, i] {
      auto entry = cache.GetOrTrain(key, failing);
      results[i] = entry.status();
    });
    if (i == 0) {
      // Give the first thread time to become the leader.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  for (auto& t : threads) t.join();

  // One fit, every caller observes its failure.
  EXPECT_EQ(factory_runs.load(), 1);
  for (const Status& s : results) {
    EXPECT_EQ(s.code(), StatusCode::kInternal);
    EXPECT_NE(s.message().find("exploded"), std::string::npos);
  }
  // No stranded entry: the failed slot was dropped, so the key retrains
  // cleanly on the next request (the factory runs again).
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Peek(key), nullptr);
  auto retry = cache.GetOrTrain(key, failing);
  EXPECT_EQ(retry.status().code(), StatusCode::kInternal);
  EXPECT_EQ(factory_runs.load(), 2);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().training_failures, 2u);
}

TEST_F(ServiceTest, InjectedTrainingFailureThenCleanRetrain) {
  FailpointGuard guard;
  const MineRequest request = SmallRequest("d", 500.0);
  ASSERT_TRUE(
      FailpointRegistry::Global().Set("serve.train", "error").ok());
  const MineResponse failed = service().Mine(request);
  EXPECT_EQ(failed.status.code(), StatusCode::kInternal);
  EXPECT_NE(failed.status.message().find("serve.train"),
            std::string::npos);
  EXPECT_EQ(service().cache().size(), 0u);

  FailpointRegistry::Global().ClearAll();
  const MineResponse retried = service().Mine(request);
  EXPECT_TRUE(retried.status.ok()) << retried.status.ToString();
  EXPECT_FALSE(retried.provenance.degraded);
  EXPECT_EQ(service().cache().size(), 1u);
}

TEST_F(ServiceTest, TrainingRetryPolicyAbsorbsTransientFailures) {
  FailpointGuard guard;
  MiningService::Options options;
  options.num_threads = 2;
  options.training_retry.max_attempts = 4;
  options.training_retry.initial_backoff_seconds = 0.001;
  options.training_retry.max_backoff_seconds = 0.002;
  MiningService retrying(options);
  ASSERT_TRUE(retrying.RegisterDataset("d", data_.data).ok());

  // prob:0.5 under a fixed seed: some attempts fail, and 4 attempts at
  // p=0.5 survive with probability 15/16 per request — with the pinned
  // seed below the sequence is deterministic and known to pass.
  FailpointRegistry::Global().SetSeed(7);
  ASSERT_TRUE(
      FailpointRegistry::Global().Set("serve.train", "prob:0.5").ok());
  const MineResponse response =
      retrying.Mine(SmallRequest("d", 500.0));
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
}

TEST(BreakerTest, OpensAfterConsecutiveFailuresAndSuggestsRetryAfter) {
  FailpointGuard guard;
  const SyntheticDataset ds = DensityData(2, 1);
  MiningService::Options options;
  options.num_threads = 2;
  options.cache.breaker_failure_threshold = 2;
  options.cache.breaker_open_seconds = 60.0;
  MiningService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", ds.data).ok());
  const MineRequest request = SmallRequest("d", 500.0);

  ASSERT_TRUE(
      FailpointRegistry::Global().Set("serve.train", "error").ok());
  EXPECT_EQ(service.Mine(request).status.code(), StatusCode::kInternal);
  EXPECT_EQ(service.Mine(request).status.code(), StatusCode::kInternal);
  // Breaker tripped: the third request is refused without training.
  const MineResponse refused = service.Mine(request);
  EXPECT_EQ(refused.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.cache().stats().breaker_rejections, 1u);
  EXPECT_EQ(service.cache().stats().training_failures, 2u);

  auto key = service.KeyFor(request);
  ASSERT_TRUE(key.ok());
  EXPECT_GE(service.cache().RetryAfterSeconds(*key), 1);
  EXPECT_LE(service.cache().RetryAfterSeconds(*key), 60);
}

TEST(BreakerTest, HalfOpenProbeRetrainsAfterTheWindow) {
  FailpointGuard guard;
  const SyntheticDataset ds = DensityData(2, 1);
  MiningService::Options options;
  options.num_threads = 2;
  options.cache.breaker_failure_threshold = 1;
  options.cache.breaker_open_seconds = 0.2;
  MiningService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", ds.data).ok());
  const MineRequest request = SmallRequest("d", 500.0);

  ASSERT_TRUE(
      FailpointRegistry::Global().Set("serve.train", "error").ok());
  EXPECT_EQ(service.Mine(request).status.code(), StatusCode::kInternal);
  EXPECT_EQ(service.Mine(request).status.code(),
            StatusCode::kUnavailable);

  // After the open window the next request probes (trains) again — and
  // with the fault cleared, succeeds and closes the breaker.
  FailpointRegistry::Global().ClearAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const MineResponse recovered = service.Mine(request);
  EXPECT_TRUE(recovered.status.ok()) << recovered.status.ToString();
  EXPECT_TRUE(service.Mine(request).cache_hit);
}

TEST(NegativeCacheTest, ReplaysRecentFailureWithoutRetraining) {
  FailpointGuard guard;
  const SyntheticDataset ds = DensityData(2, 1);
  MiningService::Options options;
  options.num_threads = 2;
  options.cache.negative_ttl_seconds = 60.0;
  MiningService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", ds.data).ok());
  const MineRequest request = SmallRequest("d", 500.0);

  ASSERT_TRUE(
      FailpointRegistry::Global().Set("serve.train", "error").ok());
  EXPECT_EQ(service.Mine(request).status.code(), StatusCode::kInternal);
  // The fault is gone, but the negative cache replays the remembered
  // failure instead of retraining inside the TTL.
  FailpointRegistry::Global().ClearAll();
  const MineResponse replayed = service.Mine(request);
  EXPECT_EQ(replayed.status.code(), StatusCode::kInternal);
  EXPECT_EQ(service.cache().stats().negative_hits, 1u);
  EXPECT_EQ(service.cache().stats().training_failures, 1u);
}

TEST(StaleServeTest, DegradedStaleModelServesWhenRevalidationFails) {
  FailpointGuard guard;
  const SyntheticDataset ds = DensityData(2, 1);
  MiningService::Options options;
  options.num_threads = 2;
  options.cache.max_age_seconds = 0.0;  // stale immediately
  options.cache.stale_while_revalidate = true;
  MiningService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", ds.data).ok());
  const MineRequest request = SmallRequest("d", 500.0);

  const MineResponse first = service.Mine(request);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.provenance.degraded);

  // The entry is stale; its revalidation fails — yet the request is
  // served from the previous model, labelled degraded, not errored.
  ASSERT_TRUE(
      FailpointRegistry::Global().Set("serve.train", "error").ok());
  const MineResponse degraded = service.Mine(request);
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_TRUE(degraded.provenance.degraded);
  EXPECT_FALSE(degraded.provenance.degraded_reason.empty());
  EXPECT_GE(service.cache().stats().degraded_serves, 1u);

  // Fault cleared: the next revalidation succeeds and the degraded flag
  // comes off.
  FailpointRegistry::Global().ClearAll();
  const MineResponse fresh = service.Mine(request);
  ASSERT_TRUE(fresh.status.ok()) << fresh.status.ToString();
  EXPECT_FALSE(fresh.provenance.degraded);
}

TEST(StaleServeTest, DisablingStaleWhileRevalidateSurfacesTheError) {
  FailpointGuard guard;
  const SyntheticDataset ds = DensityData(2, 1);
  MiningService::Options options;
  options.num_threads = 2;
  options.cache.max_age_seconds = 0.0;
  options.cache.stale_while_revalidate = false;
  MiningService service(options);
  ASSERT_TRUE(service.RegisterDataset("d", ds.data).ok());
  const MineRequest request = SmallRequest("d", 500.0);

  ASSERT_TRUE(service.Mine(request).status.ok());
  ASSERT_TRUE(
      FailpointRegistry::Global().Set("serve.train", "error").ok());
  // Without SWR the old model was evicted outright; the failed retrain
  // surfaces as an error, exactly the pre-degradation behaviour.
  EXPECT_EQ(service.Mine(request).status.code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace surf
