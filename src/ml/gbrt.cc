#include "ml/gbrt.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <numeric>
#include <sstream>

#include "ml/metrics.h"
#include "util/summary.h"

namespace surf {

namespace {

/// Rows per prediction block: small enough that one block of every
/// touched column stays cache-resident, large enough to amortize the
/// per-tree setup across rows.
constexpr size_t kPredictBlockRows = 1024;

/// Batches below this predict serially: PredictBatch spins up a pool per
/// call (the model stays copyable and trivially thread-safe), so the
/// block work must dwarf the ~0.1 ms spawn/join cost. Optimizer swarms
/// (hundreds of regions) always take the serial path.
constexpr size_t kMinParallelPredictRows = 8 * kPredictBlockRows;

constexpr size_t kMaxModelTrees = 1u << 20;
constexpr size_t kMaxModelFeatures = 1u << 20;

// Unit hessians (squared loss) are signalled by an empty vector, which
// switches the tree trainer to its count-only histogram fast path.
const std::vector<double> kUnitHess;

size_t ResolveThreads(const GbrtParams& params) {
  return params.num_threads == 0 ? ThreadPool::DefaultThreadCount()
                                 : params.num_threads;
}

TreeParams MakeTreeParams(const GbrtParams& params) {
  TreeParams tree_params;
  tree_params.max_depth = params.max_depth;
  tree_params.min_samples_leaf = params.min_samples_leaf;
  tree_params.min_child_weight = params.min_child_weight;
  tree_params.reg_lambda = params.reg_lambda;
  tree_params.min_split_gain = params.min_split_gain;
  tree_params.colsample = params.colsample;
  tree_params.use_sibling_subtraction = params.use_sibling_subtraction;
  return tree_params;
}

/// Folds one fitted tree into the running predictions. Rows the tree was
/// trained on are updated straight from its leaf ranges (one add per row,
/// no traversal); remaining rows (validation holdout, subsample dropouts)
/// take a copy-free column-major walk.
void ApplyTreeToPredictions(const RegressionTree& tree,
                            const std::vector<uint32_t>& tree_rows,
                            const std::vector<const double*>& cols,
                            double learning_rate, size_t num_rows,
                            std::vector<uint8_t>* covered,
                            std::vector<double>* pred) {
  for (const auto& leaf : tree.leaf_ranges()) {
    const double delta = learning_rate * leaf.value;
    for (uint32_t i = leaf.begin; i < leaf.end; ++i) {
      (*pred)[tree_rows[i]] += delta;
    }
  }
  if (tree_rows.size() == num_rows) return;
  covered->assign(num_rows, 0);
  for (uint32_t r : tree_rows) (*covered)[r] = 1;
  for (size_t r = 0; r < num_rows; ++r) {
    if (!(*covered)[r]) {
      tree.AddPredictions(cols.data(), r, r + 1, learning_rate,
                          pred->data() + r);
    }
  }
}

}  // namespace

std::string GbrtParams::ToString() const {
  std::ostringstream os;
  os << "lr=" << learning_rate << " trees=" << n_estimators
     << " depth=" << max_depth << " lambda=" << reg_lambda;
  return os.str();
}

std::string GbrtParams::CanonicalString() const {
  std::ostringstream os;
  os.precision(17);
  os << "lr=" << learning_rate << ";trees=" << n_estimators
     << ";depth=" << max_depth << ";lambda=" << reg_lambda
     << ";mcw=" << min_child_weight << ";msg=" << min_split_gain
     << ";msl=" << min_samples_leaf << ";subsample=" << subsample
     << ";colsample=" << colsample << ";bins=" << max_bins
     << ";esr=" << early_stopping_rounds << ";vf=" << validation_fraction
     << ";seed=" << seed;
  return os.str();
}

Status GradientBoostedTrees::Fit(const FeatureMatrix& x,
                                 const std::vector<double>& y) {
  if (x.num_rows() == 0) {
    return Status::InvalidArgument("empty training matrix");
  }
  if (x.num_rows() != y.size()) {
    return Status::InvalidArgument("feature/target row mismatch");
  }
  for (double v : y) {
    if (std::isnan(v)) {
      return Status::InvalidArgument("NaN target in training data");
    }
  }

  trees_.clear();
  train_curve_.clear();
  num_features_ = x.num_features();
  Rng rng(params_.seed);

  // Optional validation holdout for early stopping.
  std::vector<uint32_t> train_rows(x.num_rows());
  std::iota(train_rows.begin(), train_rows.end(), 0);
  std::vector<uint32_t> valid_rows;
  if (params_.early_stopping_rounds > 0 &&
      params_.validation_fraction > 0.0 && x.num_rows() >= 10) {
    rng.Shuffle(&train_rows);
    const size_t n_valid = std::max<size_t>(
        1, static_cast<size_t>(params_.validation_fraction *
                               static_cast<double>(x.num_rows())));
    valid_rows.assign(train_rows.end() - static_cast<long>(n_valid),
                      train_rows.end());
    train_rows.resize(train_rows.size() - n_valid);
  }

  base_score_ = 0.0;
  for (uint32_t r : train_rows) base_score_ += y[r];
  base_score_ /= static_cast<double>(train_rows.size());

  const FeatureBinner binner(x, params_.max_bins);
  const BinnedMatrix binned = binner.Bin(x);
  const std::vector<const double*> cols = x.ColPointers();

  std::vector<double> pred(x.num_rows(), base_score_);
  std::vector<double> grad(x.num_rows(), 0.0);
  std::vector<uint8_t> covered;

  const TreeParams tree_params = MakeTreeParams(params_);
  const size_t num_threads = ResolveThreads(params_);
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);

  double best_valid_rmse = std::numeric_limits<double>::infinity();
  size_t rounds_since_best = 0;
  size_t best_round = 0;

  // One trace span per block of boosting rounds (not per round — a
  // 300-estimator fit would flood the trace). Stage kNone: the parent
  // "training" span already accounts this time in the stage histograms.
  constexpr size_t kRoundsPerSpan = 25;
  int32_t rounds_span = -1;
  size_t rounds_span_start = 0;
  auto close_rounds_span = [&](size_t next_round) {
    if (rounds_span < 0) return;
    trace_->AddAttr(rounds_span, "rounds",
                    std::to_string(rounds_span_start) + ".." +
                        std::to_string(next_round - 1));
    trace_->EndSpan(rounds_span);
    rounds_span = -1;
  };

  std::vector<uint32_t> tree_rows;
  for (size_t round = 0; round < params_.n_estimators; ++round) {
    if (cancel_.cancelled()) {
      close_rounds_span(round);
      trees_.clear();
      train_curve_.clear();
      return Status::Cancelled("surrogate training cancelled");
    }
    if (trace_ != nullptr && round % kRoundsPerSpan == 0) {
      close_rounds_span(round);
      rounds_span = trace_->BeginSpan("boost_rounds", TraceStage::kNone);
      rounds_span_start = round;
    }
    // Squared loss: g = pred − y, h = 1.
    for (uint32_t r : train_rows) grad[r] = pred[r] - y[r];

    // Row subsampling.
    if (params_.subsample < 1.0) {
      tree_rows.clear();
      for (uint32_t r : train_rows) {
        if (rng.Bernoulli(params_.subsample)) tree_rows.push_back(r);
      }
      if (tree_rows.empty()) tree_rows = train_rows;
    } else {
      tree_rows = train_rows;
    }

    RegressionTree tree;
    tree.Fit(binned, binner, grad, kUnitHess, &tree_rows, tree_params, &rng,
             pool.get());
    ApplyTreeToPredictions(tree, tree_rows, cols, params_.learning_rate,
                           x.num_rows(), &covered, &pred);
    trees_.push_back(std::move(tree));

    // Learning curve on the training rows.
    double se = 0.0;
    for (uint32_t r : train_rows) se += (pred[r] - y[r]) * (pred[r] - y[r]);
    train_curve_.push_back(
        std::sqrt(se / static_cast<double>(train_rows.size())));

    // Early stopping.
    if (!valid_rows.empty()) {
      double vse = 0.0;
      for (uint32_t r : valid_rows) {
        vse += (pred[r] - y[r]) * (pred[r] - y[r]);
      }
      const double vrmse =
          std::sqrt(vse / static_cast<double>(valid_rows.size()));
      if (vrmse + 1e-12 < best_valid_rmse) {
        best_valid_rmse = vrmse;
        best_round = round;
        rounds_since_best = 0;
      } else if (++rounds_since_best >= params_.early_stopping_rounds) {
        trees_.resize(best_round + 1);
        break;
      }
    }
  }
  close_rounds_span(trees_.size());

  trained_ = true;
  return Status::OK();
}

Status GradientBoostedTrees::ContinueFit(const FeatureMatrix& x,
                                         const std::vector<double>& y,
                                         size_t extra_trees) {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  if (x.num_features() != num_features_) {
    return Status::InvalidArgument("feature width mismatch");
  }
  if (x.num_rows() == 0 || x.num_rows() != y.size()) {
    return Status::InvalidArgument("empty or mismatched update batch");
  }
  for (double v : y) {
    if (std::isnan(v)) {
      return Status::InvalidArgument("NaN target in update batch");
    }
  }

  Rng rng(params_.seed + trees_.size());
  const FeatureBinner binner(x, params_.max_bins);
  const BinnedMatrix binned = binner.Bin(x);
  const std::vector<const double*> cols = x.ColPointers();

  std::vector<double> pred = PredictBatch(x);
  std::vector<double> grad(x.num_rows(), 0.0);
  std::vector<uint32_t> rows(x.num_rows());
  std::vector<uint8_t> covered;

  const TreeParams tree_params = MakeTreeParams(params_);
  const size_t num_threads = ResolveThreads(params_);
  std::unique_ptr<ThreadPool> pool;
  if (num_threads > 1) pool = std::make_unique<ThreadPool>(num_threads);

  for (size_t round = 0; round < extra_trees; ++round) {
    if (cancel_.cancelled()) {
      return Status::Cancelled("warm-start continuation cancelled");
    }
    for (size_t r = 0; r < x.num_rows(); ++r) grad[r] = pred[r] - y[r];
    std::iota(rows.begin(), rows.end(), 0);
    RegressionTree tree;
    tree.Fit(binned, binner, grad, kUnitHess, &rows, tree_params, &rng,
             pool.get());
    ApplyTreeToPredictions(tree, rows, cols, params_.learning_rate,
                           x.num_rows(), &covered, &pred);
    trees_.push_back(std::move(tree));

    double se = 0.0;
    for (size_t r = 0; r < x.num_rows(); ++r) {
      se += (pred[r] - y[r]) * (pred[r] - y[r]);
    }
    train_curve_.push_back(
        std::sqrt(se / static_cast<double>(x.num_rows())));
  }
  return Status::OK();
}

double GradientBoostedTrees::Predict(const std::vector<double>& x) const {
  assert(trained_);
  assert(x.size() == num_features_);
  double out = base_score_;
  for (const auto& tree : trees_) {
    out += params_.learning_rate * tree.Predict(x.data());
  }
  return out;
}

std::vector<double> GradientBoostedTrees::PredictBatch(
    const FeatureMatrix& x) const {
  assert(trained_);
  const size_t n = x.num_rows();
  std::vector<double> out(n, base_score_);
  if (trees_.empty() || n == 0) return out;

  const std::vector<const double*> cols = x.ColPointers();
  const double lr = params_.learning_rate;
  // All trees over one block of rows before moving on: each tree's nodes
  // are touched `block` times in a row instead of once per scattered
  // visit, and each row is read in place from its column (no gather).
  auto run_range = [&](size_t b0, size_t b1) {
    for (const auto& tree : trees_) {
      tree.AddPredictions(cols.data(), b0, b1, lr, out.data() + b0);
    }
  };

  const size_t num_threads = ResolveThreads(params_);
  if (num_threads > 1 && n >= kMinParallelPredictRows) {
    // Disjoint blocks, each summed tree-by-tree in a fixed order, so the
    // result is bit-identical to the serial path.
    ThreadPool pool(num_threads);
    const size_t num_blocks =
        (n + kPredictBlockRows - 1) / kPredictBlockRows;
    ParallelFor(&pool, num_blocks, [&](size_t b) {
      const size_t b0 = b * kPredictBlockRows;
      run_range(b0, std::min(n, b0 + kPredictBlockRows));
    });
  } else {
    for (size_t b0 = 0; b0 < n; b0 += kPredictBlockRows) {
      run_range(b0, std::min(n, b0 + kPredictBlockRows));
    }
  }
  return out;
}

Status GradientBoostedTrees::Save(const std::string& path) const {
  if (!trained_) return Status::FailedPrecondition("model not trained");
  std::ofstream os(path);
  if (!os) return Status::IOError("cannot write " + path);
  os.precision(17);
  os << "surf-gbrt-v1\n";
  os << num_features_ << " " << base_score_ << " " << params_.learning_rate
     << " " << trees_.size() << "\n";
  for (const auto& tree : trees_) tree.Serialize(os);
  if (!os) return Status::IOError("short write to " + path);
  return Status::OK();
}

StatusOr<GradientBoostedTrees> GradientBoostedTrees::Load(
    const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IOError("cannot open " + path);
  std::string magic;
  is >> magic;
  if (magic != "surf-gbrt-v1") {
    return Status::IOError("bad model header in " + path);
  }
  GradientBoostedTrees model;
  long long num_features = 0, n_trees = 0;
  is >> num_features >> model.base_score_ >> model.params_.learning_rate >>
      n_trees;
  if (!is) return Status::IOError("truncated model file " + path);
  if (num_features <= 0 ||
      static_cast<size_t>(num_features) > kMaxModelFeatures) {
    return Status::IOError("feature count out of range in " + path);
  }
  if (n_trees < 0 || static_cast<size_t>(n_trees) > kMaxModelTrees) {
    return Status::IOError("tree count out of range in " + path);
  }
  if (!std::isfinite(model.base_score_) ||
      !std::isfinite(model.params_.learning_rate)) {
    return Status::IOError("non-finite model header field in " + path);
  }
  model.num_features_ = static_cast<size_t>(num_features);
  model.trees_.reserve(static_cast<size_t>(n_trees));
  for (long long t = 0; t < n_trees; ++t) {
    auto tree = RegressionTree::Deserialize(is);
    if (!tree.ok()) return tree.status();
    if (tree->MaxFeatureIndex() >= model.num_features_) {
      return Status::IOError("tree split feature out of range in " + path);
    }
    model.trees_.push_back(std::move(tree).value());
  }
  if (!is) return Status::IOError("truncated model file " + path);
  model.params_.n_estimators = static_cast<size_t>(n_trees);
  model.trained_ = true;
  return model;
}

}  // namespace surf
