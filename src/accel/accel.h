#ifndef SURF_ACCEL_ACCEL_H_
#define SURF_ACCEL_ACCEL_H_

/// \file
/// \brief Runtime-dispatched SIMD backend selection for the hot kernels.
///
/// The three hottest loops in the system — per-feature histogram builds
/// (GBRT training), the blocked packed-node batch prediction walk, and
/// the branchless uint8 membership mask scan of the sharded evaluator —
/// run through one function-pointer table (`AccelOps`, see kernels.h)
/// with a generic reference implementation plus AVX2 / AVX-512 variants.
///
/// The active table is selected once at first use: the best backend the
/// host CPU supports, overridable with the `SURF_ACCEL` environment
/// variable (`generic`, `avx2`, or `avx512`) for testing and for pinning
/// reproducible runs. An override naming an unknown or unsupported
/// backend is NOT honored silently: selection falls back to the best
/// supported backend and records `override_honored = false`, which the
/// benches turn into a nonzero exit (a silent generic fallback would
/// hide perf regressions).
///
/// Bit-identity contract: for identical inputs, every backend produces
/// bitwise-identical outputs for every kernel in the table. Integer
/// kernels (mask scan, mask count) are trivially order-independent; the
/// floating-point kernels fix one canonical accumulation order (see
/// kernels.h) that all backends — including the generic reference —
/// implement. `tests/accel_test.cc` enforces the contract differentially
/// on every backend the host supports.

#include <string>

#include "accel/kernels.h"

namespace surf {

/// Identifies one kernel backend. Order is meaningful: higher enum
/// values are wider ISAs, and selection picks the highest supported.
enum class AccelBackend : int {
  kGeneric = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Number of backends (for enumeration loops in tests and benches).
inline constexpr int kNumAccelBackends = 3;

/// Canonical lower-case name ("generic", "avx2", "avx512").
const char* AccelBackendName(AccelBackend backend);

/// Parses a backend name (as accepted in SURF_ACCEL). Returns false and
/// leaves `*out` untouched on unknown names.
bool ParseAccelBackend(const std::string& name, AccelBackend* out);

/// True when this binary contains real vector code for `backend`
/// (compile-time support; generic is always compiled).
bool AccelCompiled(AccelBackend backend);

/// True when `backend` is compiled in AND the host CPU can execute it.
bool AccelSupported(AccelBackend backend);

/// The widest backend this host supports (kGeneric at minimum).
AccelBackend BestSupportedAccelBackend();

/// Direct access to one backend's kernel table, bypassing selection.
/// Returns the generic table when `backend` is not compiled in; callers
/// enumerating backends should gate on AccelSupported() first.
const AccelOps& AccelOpsFor(AccelBackend backend);

/// Result of one backend selection (env read + CPUID).
struct AccelSelection {
  AccelBackend active = AccelBackend::kGeneric;
  /// True when SURF_ACCEL was set (and non-empty).
  bool override_requested = false;
  /// False when SURF_ACCEL named an unknown or unsupported backend (the
  /// selection then falls back to the best supported backend).
  bool override_honored = true;
  /// Raw SURF_ACCEL value, for diagnostics.
  std::string requested;
};

/// The active kernel table. First call performs selection (env +
/// CPUID); subsequent calls are one atomic load.
const AccelOps& Accel();

/// Backend of the active table.
AccelBackend ActiveAccelBackend();

/// The selection that produced the active table (forces selection on
/// first use).
AccelSelection CurrentAccelSelection();

/// Re-reads SURF_ACCEL and re-selects the active table. Test/bench
/// hook: the env var is naturally read once per process, so tests that
/// sweep backends re-trigger selection explicitly after setenv().
AccelSelection ReselectAccelFromEnv();

/// Pins the active table to `backend` (bypassing the env var). Returns
/// false — leaving the active table unchanged — when `backend` is not
/// supported on this host.
bool SetActiveAccelBackend(AccelBackend backend);

}  // namespace surf

#endif  // SURF_ACCEL_ACCEL_H_
