#ifndef SURF_OPT_NAIVE_SEARCH_H_
#define SURF_OPT_NAIVE_SEARCH_H_

#include <cstdint>
#include <vector>

#include "opt/objective.h"
#include "opt/solution_space.h"

namespace surf {

/// \brief A scored candidate region produced by any of the miners.
struct ScoredRegion {
  Region region;
  /// Objective value J (higher is better).
  double fitness = 0.0;
  /// The statistic y behind the score (NaN when not computed).
  double statistic = 0.0;
};

/// \brief Parameters of the exhaustive baseline (paper §II-A).
struct NaiveSearchParams {
  /// Grid resolution: n center positions per dimension.
  size_t centers_per_dim = 6;
  /// m candidate sizes per dimension (the paper's n = m = 6).
  size_t sizes_per_dim = 6;
  /// Wall-clock budget in seconds; <= 0 disables (paper used 3000 s).
  double time_budget_seconds = 0.0;
  /// Stop after this many evaluations; 0 disables.
  uint64_t max_evaluations = 0;
};

/// \brief Outcome of a Naive run, including how much of the grid was
/// actually examined (Table I reports the ratio at timeout).
struct NaiveSearchResult {
  std::vector<ScoredRegion> viable;
  uint64_t total_candidates = 0;
  uint64_t examined = 0;
  double elapsed_seconds = 0.0;
  bool timed_out = false;

  double FractionExamined() const {
    return total_candidates == 0
               ? 0.0
               : static_cast<double>(examined) /
                     static_cast<double>(total_candidates);
  }
};

/// \brief Exhaustive grid baseline: discretizes centers and sizes per
/// dimension and evaluates the objective on all (n·m)^d boxes —
/// O((n·m)^d · N) with a scan evaluator (paper §II-A).
class NaiveSearch {
 public:
  explicit NaiveSearch(NaiveSearchParams params) : params_(params) {}

  /// Evaluates the whole grid (or until the budget runs out) and returns
  /// every region whose objective is valid (constraint satisfied).
  NaiveSearchResult Run(const RegionObjective& objective,
                        const RegionSolutionSpace& space) const;

  const NaiveSearchParams& params() const { return params_; }

 private:
  NaiveSearchParams params_;
};

/// Greedy non-maximum suppression over scored regions: keeps the highest
/// scoring region, drops candidates overlapping a kept one with
/// IoU > max_iou, repeats. Used by every miner to turn raw candidates
/// (particles / grid cells) into a distinct-region report.
std::vector<ScoredRegion> SelectDistinctRegions(
    std::vector<ScoredRegion> candidates, double max_iou,
    size_t max_regions);

}  // namespace surf

#endif  // SURF_OPT_NAIVE_SEARCH_H_
