// Figure 2: the synthetic ground-truth datasets themselves — a summary of
// each of the paper's 20 settings (statistic × k × d) with the planted
// regions' statistics, plus optional CSV dumps of the d<=2 datasets for
// re-plotting the figure.

#include <cstdio>

#include "bench_common.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);

  std::printf("Figure 2 — the synthetic ground-truth dataset grid\n\n");
  TablePrinter table({"dataset", "N", "GT regions", "GT statistic(s)",
                      "threshold y_R"});
  for (const SyntheticSpec& spec : SyntheticGenerator::PaperGrid()) {
    const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
    std::vector<std::string> stats;
    for (double y : ds.gt_statistics) stats.push_back(FormatDouble(y, 1));
    table.AddRow({spec.Name(), std::to_string(ds.data.num_rows()),
                  std::to_string(ds.gt_regions.size()),
                  JoinStrings(stats, ", "),
                  FormatDouble(bench::ThresholdFor(ds), 0)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nEvery GT statistic exceeds its threshold, making the "
              "planted regions the objective's modes.\n");

  const std::string dir = flags.GetString("dump-dir", "");
  if (!dir.empty()) {
    for (const SyntheticSpec& spec : SyntheticGenerator::PaperGrid()) {
      if (spec.dims > 2) continue;
      const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
      const std::string path = dir + "/" + spec.Name() + ".csv";
      if (auto st = ds.data.SaveCsv(path); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
    std::printf("d<=2 datasets dumped to %s/\n", dir.c_str());
  }
  return 0;
}
