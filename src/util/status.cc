#include "util/status.h"

namespace surf {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace surf
