#ifndef SURF_ML_METRICS_H_
#define SURF_ML_METRICS_H_

#include <vector>

namespace surf {

/// Root mean squared error between predictions and targets.
double Rmse(const std::vector<double>& pred, const std::vector<double>& truth);

/// Mean absolute error.
double Mae(const std::vector<double>& pred, const std::vector<double>& truth);

/// Coefficient of determination R²; can be negative for models worse than
/// the target mean. Returns 0 when the targets are constant.
double R2Score(const std::vector<double>& pred,
               const std::vector<double>& truth);

}  // namespace surf

#endif  // SURF_ML_METRICS_H_
