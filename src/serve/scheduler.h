#ifndef SURF_SERVE_SCHEDULER_H_
#define SURF_SERVE_SCHEDULER_H_

/// \file
/// \brief Request fan-out over a shared worker pool.

#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "util/thread_pool.h"

namespace surf {

/// \brief Fans mining requests out over a shared ThreadPool and collects
/// their responses in submission order.
///
/// The scheduler is deliberately generic over the response type: the
/// service hands it closures that already capture the request, so the
/// scheduler only owns ordering and future plumbing. Single-flight
/// de-duplication of the expensive part (surrogate training) lives in
/// SurrogateCache — by the time concurrent same-key jobs run here, all
/// but one of them block cheaply on the in-flight training instead of
/// fitting their own model.
class RequestScheduler {
 public:
  /// `pool` is borrowed and must outlive the scheduler.
  explicit RequestScheduler(ThreadPool* pool) : pool_(pool) {}

  /// Enqueues one job; the future resolves when the pool runs it.
  template <typename T>
  std::future<T> Submit(std::function<T()> job) {
    auto task = std::make_shared<std::packaged_task<T()>>(std::move(job));
    std::future<T> future = task->get_future();
    pool_->Submit([task] { (*task)(); });
    return future;
  }

  /// Runs every job concurrently and returns their results in input
  /// order. Blocks until all jobs finish.
  template <typename T>
  std::vector<T> RunAll(std::vector<std::function<T()>> jobs) {
    std::vector<std::future<T>> futures;
    futures.reserve(jobs.size());
    for (auto& job : jobs) futures.push_back(Submit<T>(std::move(job)));
    std::vector<T> results;
    results.reserve(futures.size());
    for (auto& f : futures) results.push_back(f.get());
    return results;
  }

  /// The borrowed pool.
  ThreadPool* pool() const { return pool_; }

 private:
  ThreadPool* pool_;
};

}  // namespace surf

#endif  // SURF_SERVE_SCHEDULER_H_
