#ifndef SURF_STATS_QUANTILE_SKETCH_H_
#define SURF_STATS_QUANTILE_SKETCH_H_

/// \file
/// \brief Deterministic mergeable quantile sketch (KLL-style compactor
/// hierarchy) backing the median statistic.
///
/// The sharded evaluation path needs every statistic to be a mergeable
/// monoid: per-shard partial accumulators are combined in fixed shard
/// order at the end of a scan. Count/sum/mean/variance merge exactly;
/// the median does not — so it is served from this sketch, which is
/// closed under Merge and keeps a provable rank-error bound.
///
/// Design points:
///  - Level i holds items of weight 2^i. Level 0 is the raw insert
///    buffer; while the total item count stays within the level-0
///    capacity no compaction ever runs and every quantile is EXACT —
///    small regions (the common case for box queries) pay nothing for
///    mergeability.
///  - Compaction sorts a full level and keeps every other element,
///    alternating the surviving parity per level between compactions.
///    The alternation replaces KLL's random coin: the sketch stays fully
///    deterministic (same insert/merge sequence → bit-identical state)
///    while the per-compaction rank bias still cancels in aggregate.
///  - Merge concatenates levels pairwise and re-compacts; it is
///    deterministic in the operand order, which the sharded scan fixes
///    (shard 0, 1, 2, ...).
///
/// With per-level capacity k and n inserts the worst-case rank error is
/// O(log(n/k) · n/k) ranks; with the default k = 4096 the observed error
/// on 10^5..10^7-item streams stays well under 1% of n (the property
/// suite asserts 2%).

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/json.h"
#include "util/status.h"

namespace surf {

/// \brief Deterministic mergeable quantile sketch; see file comment.
class QuantileSketch {
 public:
  /// Default per-level item capacity (also the exactness threshold: all
  /// queries are exact until more than this many values are inserted).
  static constexpr size_t kDefaultCapacity = 4096;

  /// Sketch with the given per-level capacity (floored at 8).
  explicit QuantileSketch(size_t capacity = kDefaultCapacity);

  /// Inserts one value.
  void Add(double value);

  /// Merges another sketch into this one (deterministic in operand
  /// order). The capacities need not match; the larger of the two wins.
  void Merge(const QuantileSketch& other);

  /// Number of values inserted (across merges).
  uint64_t count() const { return count_; }

  /// True while no compaction has run — every quantile is then exact.
  bool exact() const { return compactions_ == 0; }

  /// Total compactions performed (each loses at most one unit of rank
  /// resolution at its level's weight).
  uint64_t compactions() const { return compactions_; }

  /// Retained items across all levels (memory footprint proxy).
  size_t num_retained() const;

  /// Value whose rank is approximately `q * (count() - 1)` (lower
  /// interpolation). NaN on an empty sketch.
  double Quantile(double q) const;

  /// The median under the same convention the exact path used: for odd
  /// counts the middle value, for even counts the average of the two
  /// middle values. Exact whenever exact() holds; otherwise within the
  /// sketch's rank-error bound. NaN on an empty sketch.
  double Median() const;

  /// Exact wire form of the full sketch state (capacity, levels, parity,
  /// counters). Values are hex-encoded IEEE-754 bit patterns
  /// (util/string_util.h DoubleToHex), so NaN/Inf survive and
  /// FromJson(ToJson(s)) reproduces `s` bit for bit — merging
  /// deserialized sketches equals merging the originals.
  JsonValue ToJson() const;

  /// Inverse of ToJson. InvalidArgument on schema violations.
  static StatusOr<QuantileSketch> FromJson(const JsonValue& json);

 private:
  /// Sorts level `level` and promotes every other element to level + 1,
  /// alternating the surviving parity. Cascades when the next level
  /// overflows.
  void Compact(size_t level);

  /// All retained (value, weight) pairs, sorted by value.
  std::vector<std::pair<double, uint64_t>> GatherSorted() const;

  /// Value at 0-based weighted rank `rank` over a GatherSorted() set.
  static double WalkRank(
      const std::vector<std::pair<double, uint64_t>>& weighted,
      uint64_t rank);

  size_t capacity_;
  /// levels_[i] holds items of weight 2^i; level 0 is unsorted.
  std::vector<std::vector<double>> levels_;
  /// Per-level parity of the next compaction (0: keep even indices).
  std::vector<uint8_t> parity_;
  uint64_t count_ = 0;
  uint64_t compactions_ = 0;
};

}  // namespace surf

#endif  // SURF_STATS_QUANTILE_SKETCH_H_
