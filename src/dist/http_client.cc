#include "dist/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace surf {
namespace dist {

namespace {

using Clock = std::chrono::steady_clock;

/// One poll slice: short enough that cancellation lands promptly,
/// long enough that an idle wait costs nothing measurable.
constexpr int kPollSliceMs = 10;

/// RAII socket: closed on every exit path, including cancellation —
/// which is what "cancellation releases the worker connection" means at
/// the transport level (the peer sees EOF/RST and unwinds its handler).
struct ScopedFd {
  int fd = -1;
  ~ScopedFd() {
    if (fd >= 0) ::close(fd);
  }
};

/// Waits for `events` on `fd` in cancel-checking slices until
/// `deadline`. OK when the fd is ready; Cancelled/TimedOut otherwise.
Status AwaitReady(int fd, short events, Clock::time_point deadline,
                  const CancelToken& cancel) {
  while (true) {
    if (cancel.cancelled()) return Status::Cancelled("rpc cancelled");
    if (Clock::now() >= deadline) return Status::TimedOut("rpc timed out");
    pollfd pfd{fd, events, 0};
    const int n = ::poll(&pfd, 1, kPollSliceMs);
    if (n < 0 && errno != EINTR) {
      return Status::IOError("poll failed: " + std::string(strerror(errno)));
    }
    if (n > 0) return Status::OK();
  }
}

Status ConnectWithin(int fd, const sockaddr_in& addr,
                     Clock::time_point deadline, const CancelToken& cancel) {
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0) {
    return Status::OK();
  }
  if (errno != EINPROGRESS) {
    return Status::IOError("connect failed: " + std::string(strerror(errno)));
  }
  SURF_RETURN_IF_ERROR(AwaitReady(fd, POLLOUT, deadline, cancel));
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
    return Status::IOError("connect failed: " +
                           std::string(strerror(err != 0 ? err : errno)));
  }
  return Status::OK();
}

Status SendWithin(int fd, const std::string& data, Clock::time_point deadline,
                  const CancelToken& cancel) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      SURF_RETURN_IF_ERROR(AwaitReady(fd, POLLOUT, deadline, cancel));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IOError("send failed: " + std::string(strerror(errno)));
  }
  return Status::OK();
}

/// Parses the status line and the Content-Length header out of a
/// complete header section (everything before the blank line).
bool ParseHead(const std::string& head, int* status_code,
               size_t* content_length, bool* has_length) {
  // "HTTP/1.1 200 OK"
  if (head.size() < 12 || head.compare(0, 5, "HTTP/") != 0) return false;
  *status_code = std::atoi(head.substr(9, 3).c_str());
  if (*status_code < 100) return false;
  *has_length = false;
  *content_length = 0;
  size_t line_start = head.find("\r\n");
  while (line_start != std::string::npos && line_start + 2 < head.size()) {
    line_start += 2;
    size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    std::string line = head.substr(line_start, line_end - line_start);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(c));
      if (name == "content-length") {
        size_t vs = colon + 1;
        while (vs < line.size() && line[vs] == ' ') ++vs;
        *content_length = static_cast<size_t>(std::atoll(line.c_str() + vs));
        *has_length = true;
      }
    }
    line_start = line_end;
  }
  return true;
}

}  // namespace

Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint.size()) {
    return Status::InvalidArgument("worker endpoint '" + endpoint +
                                   "' is not host:port");
  }
  char* end = nullptr;
  const unsigned long p = std::strtoul(endpoint.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || p == 0 || p > 65535) {
    return Status::InvalidArgument("worker endpoint '" + endpoint +
                                   "' has a bad port");
  }
  *host = endpoint.substr(0, colon);
  if (*host == "localhost") *host = "127.0.0.1";
  *port = static_cast<uint16_t>(p);
  return Status::OK();
}

StatusOr<HttpReply> HttpCall(const std::string& host, uint16_t port,
                             const std::string& method,
                             const std::string& target,
                             const std::string& body, double timeout_seconds,
                             const CancelToken& cancel) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_seconds));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad worker address '" + host + "'");
  }

  ScopedFd sock;
  sock.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (sock.fd < 0) {
    return Status::IOError("socket failed: " + std::string(strerror(errno)));
  }
  const int flags = ::fcntl(sock.fd, F_GETFL, 0);
  ::fcntl(sock.fd, F_SETFL, flags | O_NONBLOCK);
  const int one = 1;
  ::setsockopt(sock.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  SURF_RETURN_IF_ERROR(ConnectWithin(sock.fd, addr, deadline, cancel));

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + host + "\r\n";
  request += "Connection: close\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  request += body;
  SURF_RETURN_IF_ERROR(SendWithin(sock.fd, request, deadline, cancel));

  std::string buffer;
  size_t head_end = std::string::npos;
  int status_code = 0;
  size_t content_length = 0;
  bool has_length = false;
  char chunk[16384];
  while (true) {
    const ssize_t n = ::recv(sock.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<size_t>(n));
      if (head_end == std::string::npos) {
        head_end = buffer.find("\r\n\r\n");
        if (head_end != std::string::npos &&
            !ParseHead(buffer.substr(0, head_end), &status_code,
                       &content_length, &has_length)) {
          return Status::IOError("malformed response from worker");
        }
      }
      if (head_end != std::string::npos && has_length &&
          buffer.size() >= head_end + 4 + content_length) {
        break;  // full framed body in hand
      }
      continue;
    }
    if (n == 0) break;  // peer closed — Connection: close framing
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      SURF_RETURN_IF_ERROR(AwaitReady(sock.fd, POLLIN, deadline, cancel));
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError("recv failed: " + std::string(strerror(errno)));
  }

  if (head_end == std::string::npos) {
    return Status::IOError("connection closed before response headers");
  }
  HttpReply reply;
  reply.status_code = status_code;
  reply.body = buffer.substr(head_end + 4);
  if (has_length) {
    if (reply.body.size() < content_length) {
      return Status::IOError("connection closed mid-body");
    }
    reply.body.resize(content_length);
  }
  return reply;
}

}  // namespace dist
}  // namespace surf
