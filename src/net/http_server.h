#ifndef SURF_NET_HTTP_SERVER_H_
#define SURF_NET_HTTP_SERVER_H_

/// \file
/// \brief A dependency-free HTTP/1.1 server over POSIX sockets.
///
/// Architecture: one acceptor thread accepts loopback/TCP connections and
/// hands each to a handler worker on a ThreadPool. Admission control is a
/// bounded in-flight budget — past `max_inflight` concurrently served
/// connections the acceptor answers `429 Too Many Requests` immediately
/// instead of queueing unbounded work (the overload contract of the
/// serving layer). Each request is read under a deadline (`408` on
/// expiry), and `Shutdown()` performs a graceful drain: accepting stops,
/// idle keep-alive connections are closed, and every request whose bytes
/// have started arriving is served to completion before the call returns.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"

namespace surf {

/// \brief One parsed HTTP request.
struct HttpRequest {
  /// Upper-case request method ("GET", "POST", ...).
  std::string method;
  /// Request target as sent (path, no scheme/authority), e.g. "/v1/mine".
  std::string target;
  /// Header fields with lower-cased names, in arrival order.
  std::vector<std::pair<std::string, std::string>> headers;
  /// Request body (Content-Length framing; chunked is not accepted).
  std::string body;
  /// The transport's per-request deadline (started at the request's first
  /// byte). Handlers serving long-running work thread the remaining
  /// budget into a CancelSource so an expired deadline reclaims the
  /// worker's CPU instead of stranding it (max() = no deadline, e.g. for
  /// handlers invoked outside the server).
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  /// Seconds until `deadline` (clamped at 0); +inf when no deadline.
  double RemainingSeconds() const;

  /// Value of the first header named `name` (lower-case), or null.
  const std::string* FindHeader(const std::string& name) const;
};

/// \brief One HTTP response produced by a handler.
struct HttpResponse {
  /// HTTP status code (200, 404, ...).
  int status_code = 200;
  /// Content-Type header value.
  std::string content_type = "application/json";
  /// Extra response headers (name, value) emitted verbatim after the
  /// standard ones — e.g. {"Retry-After", "5"} on 429/503 answers.
  std::vector<std::pair<std::string, std::string>> headers;
  /// Response body.
  std::string body;
};

/// Builds a JSON error response `{"error": {"code": ..., "message": ...}}`
/// with the given HTTP status.
HttpResponse JsonErrorResponse(int status_code, const std::string& code,
                               const std::string& message);

/// The standard reason phrase for a status code ("OK", "Not Found", ...).
const char* HttpReasonPhrase(int status_code);

/// Sends all `size` bytes of `data` on `fd` within `timeout_seconds`,
/// absorbing partial writes, EINTR, and EAGAIN/EWOULDBLOCK (waiting for
/// writability in bounded poll slices). Returns false on any hard send
/// error or when the timeout expires before the last byte is accepted.
/// Exposed for the transport tests; the server's own response path (and
/// its 429 fast path) is built on it.
bool SendAll(int fd, const char* data, size_t size, double timeout_seconds);

/// \brief Application callback: one request in, one response out.
/// Invoked concurrently from worker threads; must be thread-safe.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// \brief The embedded HTTP/1.1 server (`surfd`'s transport).
class HttpServer {
 public:
  /// \brief Listener, concurrency, and deadline configuration.
  struct Options {
    /// Address to bind (loopback by default; "0.0.0.0" to expose).
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 asks the kernel for an ephemeral port (see port()).
    uint16_t port = 0;
    /// Handler worker threads. The server is thread-per-connection (a
    /// worker owns a keep-alive connection until it closes), so the
    /// default 0 sizes the pool to max(hardware concurrency,
    /// max_inflight) — every admitted connection gets a worker, and
    /// admission control is what bounds concurrency.
    size_t num_workers = 0;
    /// Concurrently served connections admitted before the acceptor
    /// starts answering 429 (the bounded accept queue).
    size_t max_inflight = 64;
    /// listen(2) backlog.
    int accept_backlog = 128;
    /// Per-request deadline: reading one full request (and writing its
    /// response) must finish within this budget or the connection is
    /// answered 408 and closed.
    double request_deadline_seconds = 30.0;
    /// Idle keep-alive connections are closed after this long without a
    /// new request.
    double idle_timeout_seconds = 60.0;
    /// Maximum accepted header section size.
    size_t max_header_bytes = 64 * 1024;
    /// Maximum accepted body size (413 beyond it).
    size_t max_body_bytes = 64 * 1024 * 1024;
  };

  /// \brief Monotonic transport counters.
  struct Stats {
    /// Connections accepted (including ones later rejected with 429).
    uint64_t connections_accepted = 0;
    /// Connections turned away with 429 by admission control.
    uint64_t connections_rejected = 0;
    /// Requests fully served (handler ran, response written).
    uint64_t requests_served = 0;
    /// Requests that hit the read deadline (408).
    uint64_t request_timeouts = 0;
    /// Requests rejected by the HTTP parser (400/413/501).
    uint64_t parse_errors = 0;
    /// Handler invocations that threw an exception (answered 500).
    uint64_t worker_exceptions = 0;
    /// Responses whose socket write failed (peer gone, injected fault,
    /// or write deadline expired); the connection is dropped.
    uint64_t write_failures = 0;
    /// Connections currently being served.
    uint64_t inflight = 0;
  };

  /// Configures the server; call Start() to bind and serve.
  HttpServer(Options options, HttpHandler handler);
  /// Stops (gracefully) if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the acceptor thread. Fails with IOError
  /// when the address/port cannot be bound.
  Status Start();

  /// Graceful drain: stop accepting, close idle connections, serve every
  /// in-flight request to completion, then return. Idempotent.
  void Shutdown();

  /// Whether Start() succeeded and Shutdown() has not completed.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the kernel-chosen one when Options::port was 0).
  uint16_t port() const { return port_; }

  /// Effective handler-worker count (the resolved default sizing when
  /// Options::num_workers was 0); 0 before Start().
  size_t workers() const {
    return workers_ == nullptr ? 0 : workers_->num_threads();
  }

  /// Transport counter snapshot.
  Stats stats() const;

  /// The configuration the server runs with.
  const Options& options() const { return options_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Reads one request. Returns 1 on success, 0 on clean close (no bytes
  /// of a next request arrived — EOF, idle timeout, or drain), -1 after
  /// an error response has been written.
  int ReadRequest(int fd, HttpRequest* request);
  bool WriteResponse(int fd, const HttpResponse& response, bool keep_alive);

  Options options_;
  HttpHandler handler_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::thread acceptor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  std::unique_ptr<ThreadPool> workers_;

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  Stats stats_;
};

}  // namespace surf

#endif  // SURF_NET_HTTP_SERVER_H_
