#ifndef SURF_NET_HTTP_SERVER_H_
#define SURF_NET_HTTP_SERVER_H_

/// \file
/// \brief A dependency-free HTTP/1.1 server over POSIX sockets.
///
/// Architecture: a single epoll-driven event loop owns the listening
/// socket and every connection — nonblocking accept/read/write state
/// machines with per-connection buffers and a hashed timer wheel for
/// idle timeouts, request deadlines, and write deadlines. Complete
/// requests are handed to a two-class PriorityScheduler (interactive
/// vs. batch by request header, earliest-deadline-first within a
/// class); workers run the handler and post the serialized response
/// back to the loop over an eventfd, so no thread ever blocks on a
/// socket.
///
/// Admission control counts in-flight *requests*, not connections:
/// past `max_inflight` concurrently dispatched requests the loop
/// answers `429 Too Many Requests` — written asynchronously like any
/// other response, so a flood of rejected clients cannot stall accept.
/// Idle keep-alive connections hold no admission slot. Per-tenant QoS
/// (token-bucket rate limits and concurrency quotas keyed off a tenant
/// header) rejects before dispatch, and an optional ready-queue bound
/// load-sheds the cheapest queued batch work first (503). Each request
/// is read under a deadline (`408` on expiry), and `Shutdown()`
/// performs a graceful drain: accepting stops, idle keep-alive
/// connections are closed, and every request whose bytes have started
/// arriving is served to completion before the call returns.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sched/priority_scheduler.h"
#include "sched/tenant_governor.h"
#include "sched/timer_wheel.h"
#include "util/status.h"

namespace surf {

/// \brief One parsed HTTP request.
struct HttpRequest {
  /// Upper-case request method ("GET", "POST", ...).
  std::string method;
  /// Request target as sent (path, no scheme/authority), e.g. "/v1/mine".
  std::string target;
  /// Header fields with lower-cased names, in arrival order.
  std::vector<std::pair<std::string, std::string>> headers;
  /// Request body (Content-Length framing; chunked is not accepted).
  std::string body;
  /// The transport's per-request deadline (started at the request's first
  /// byte). Handlers serving long-running work thread the remaining
  /// budget into a CancelSource so an expired deadline reclaims the
  /// worker's CPU instead of stranding it (max() = no deadline, e.g. for
  /// handlers invoked outside the server).
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  /// Seconds until `deadline` (clamped at 0); +inf when no deadline.
  double RemainingSeconds() const;

  /// Value of the first header named `name` (lower-case), or null.
  const std::string* FindHeader(const std::string& name) const;
};

/// \brief One HTTP response produced by a handler.
struct HttpResponse {
  /// HTTP status code (200, 404, ...).
  int status_code = 200;
  /// Content-Type header value.
  std::string content_type = "application/json";
  /// Extra response headers (name, value) emitted verbatim after the
  /// standard ones — e.g. {"Retry-After", "5"} on 429/503 answers.
  std::vector<std::pair<std::string, std::string>> headers;
  /// Response body.
  std::string body;
};

/// Builds a JSON error response `{"error": {"code": ..., "message": ...}}`
/// with the given HTTP status.
HttpResponse JsonErrorResponse(int status_code, const std::string& code,
                               const std::string& message);

/// The standard reason phrase for a status code ("OK", "Not Found", ...).
const char* HttpReasonPhrase(int status_code);

/// Sends all `size` bytes of `data` on `fd` within `timeout_seconds`,
/// absorbing partial writes, EINTR, and EAGAIN/EWOULDBLOCK (waiting for
/// writability in bounded poll slices). Returns false on any hard send
/// error or when the timeout expires before the last byte is accepted.
/// Exposed for the transport tests and blocking clients (the dist
/// worker RPC path); the server's own responses go through the event
/// loop's nonblocking write state machine instead.
bool SendAll(int fd, const char* data, size_t size, double timeout_seconds);

/// \brief Application callback: one request in, one response out.
/// Invoked concurrently from worker threads; must be thread-safe.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// \brief The embedded HTTP/1.1 server (`surfd`'s transport).
class HttpServer {
 public:
  /// \brief Listener, concurrency, deadline, and QoS configuration.
  struct Options {
    /// Address to bind (loopback by default; "0.0.0.0" to expose).
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 asks the kernel for an ephemeral port (see port()).
    uint16_t port = 0;
    /// Interactive handler worker threads. The default 0 sizes the pool
    /// to max(hardware concurrency, max_inflight) so admission control,
    /// not worker starvation, is what bounds concurrency.
    size_t num_workers = 0;
    /// Batch-class worker threads — also the batch concurrency cap
    /// (batch jobs never run on interactive workers). The default 0
    /// resolves to max(1, num_workers / 8).
    size_t batch_workers = 0;
    /// Concurrently dispatched *requests* admitted before the loop
    /// answers 429. Idle keep-alive connections hold no slot.
    size_t max_inflight = 64;
    /// listen(2) backlog.
    int accept_backlog = 128;
    /// Per-request deadline: reading one full request (and writing its
    /// response) must finish within this budget or the connection is
    /// answered 408 and closed.
    double request_deadline_seconds = 30.0;
    /// Idle keep-alive connections are closed after this long without a
    /// new request.
    double idle_timeout_seconds = 60.0;
    /// Maximum accepted header section size.
    size_t max_header_bytes = 64 * 1024;
    /// Maximum accepted body size (413 beyond it).
    size_t max_body_bytes = 64 * 1024 * 1024;
    /// Request header naming the tenant for QoS accounting (lower-case;
    /// requests without it bill the "default" tenant).
    std::string tenant_header = "x-surf-tenant";
    /// Request header carrying the scheduling class; the value "batch"
    /// (case-insensitive) routes the request to the batch workers.
    std::string priority_header = "x-surf-priority";
    /// Per-tenant rate limits and concurrency quotas (all unlimited by
    /// default).
    sched::TenantGovernor::Options qos;
    /// Ready-queue depth that triggers load shedding (the farthest-
    /// deadline queued batch job is abandoned with a 503). 0 = never
    /// shed: admission control alone bounds the backlog.
    size_t max_queue_depth = 0;
  };

  /// \brief Monotonic transport counters.
  struct Stats {
    /// Connections accepted.
    uint64_t connections_accepted = 0;
    /// Requests turned away with 429 by global admission control.
    uint64_t connections_rejected = 0;
    /// Requests fully served (handler ran, response written).
    uint64_t requests_served = 0;
    /// Requests that hit the read deadline (408).
    uint64_t request_timeouts = 0;
    /// Requests rejected by the HTTP parser (400/413/431/501).
    uint64_t parse_errors = 0;
    /// Handler invocations that threw an exception (answered 500).
    uint64_t worker_exceptions = 0;
    /// Responses whose socket write failed (peer gone, injected fault,
    /// or write deadline expired); the connection is dropped.
    uint64_t write_failures = 0;
    /// Requests currently dispatched to the scheduler (admission gauge;
    /// idle keep-alive connections do not count).
    uint64_t inflight = 0;
    /// Requests answered 429 by a tenant rate limit.
    uint64_t tenant_throttled = 0;
    /// Requests answered 429 by a tenant concurrency quota.
    uint64_t tenant_over_quota = 0;
    /// Queued jobs abandoned by load shedding (answered 503).
    uint64_t requests_shed = 0;
    /// Subset of requests_served that ran on the batch workers.
    uint64_t batch_served = 0;
    /// Currently open connections (gauge).
    uint64_t connections_open = 0;
  };

  /// Configures the server; call Start() to bind and serve.
  HttpServer(Options options, HttpHandler handler);
  /// Stops (gracefully) if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and spawns the event loop + scheduler. Fails with
  /// IOError when the address/port cannot be bound.
  Status Start();

  /// Graceful drain: stop accepting, close idle connections, serve every
  /// in-flight request to completion, then return. Idempotent.
  void Shutdown();

  /// Whether Start() succeeded and Shutdown() has not completed.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the kernel-chosen one when Options::port was 0).
  uint16_t port() const { return port_; }

  /// Effective interactive-worker count (the resolved default sizing
  /// when Options::num_workers was 0); 0 before Start().
  size_t workers() const {
    return scheduler_ == nullptr ? 0 : scheduler_->interactive_workers();
  }

  /// Effective batch-worker count; 0 before Start().
  size_t batch_workers() const {
    return scheduler_ == nullptr ? 0 : scheduler_->batch_workers();
  }

  /// Transport counter snapshot.
  Stats stats() const;

  /// Scheduler counter snapshot (zeroed before Start()).
  sched::PriorityScheduler::Stats scheduler_stats() const;

  /// The configuration the server runs with.
  const Options& options() const { return options_; }

 private:
  struct Connection;
  /// A finished unit of worker-side work handed back to the loop.
  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;       ///< Serialized response ("" with drop).
    bool keep_alive = true;  ///< Connection stays open after the write.
    bool drop = false;       ///< Injected write fault: drop the peer.
    bool count_served = false;  ///< Bump requests_served on full flush.
    bool batch = false;
    bool shed = false;  ///< Load-shed answer (counts requests_shed).
    bool end_request = true;  ///< Releases the admission + tenant slot.
    std::string tenant;
    bool tenant_charged = false;
  };

  void RunLoop();
  void WakeLoop();
  void PushCompletion(Completion completion);
  void HandleCompletion(Completion completion);
  void AcceptReady();
  void HandleConnectionEvent(uint64_t id, uint32_t events);
  void ReadAvailable(Connection* conn);
  void ProcessInput(Connection* conn);
  void DispatchRequest(Connection* conn);
  /// Queues an error response and closes (via lingering half-close)
  /// after it is flushed; bumps `*counter` when non-null.
  void ErrorClose(Connection* conn, const HttpResponse& response,
                  uint64_t Stats::*counter);
  void StartWrite(Connection* conn, std::string bytes, bool keep_alive);
  void ContinueWrite(Connection* conn);
  void FinishWrite(Connection* conn);
  void BeginLinger(Connection* conn);
  void OnTimer(uint64_t id);
  void CloseConnection(Connection* conn);
  void UpdateEpoll(Connection* conn, uint32_t events);

  Options options_;
  HttpHandler handler_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};

  std::unique_ptr<sched::PriorityScheduler> scheduler_;
  std::unique_ptr<sched::TenantGovernor> governor_;
  std::unique_ptr<sched::TimerWheel> wheel_;

  /// Loop-thread-only state (no lock: only RunLoop touches it).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wake eventfd

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  Stats stats_;

  std::mutex completions_mu_;
  std::vector<Completion> completions_;
};

}  // namespace surf

#endif  // SURF_NET_HTTP_SERVER_H_
