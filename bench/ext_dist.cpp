// Extension: distributed scatter-gather labelling (ISSUE 9 acceptance).
//
// Spawns real worker surfd processes (fork + HttpServer on ephemeral
// loopback ports, each holding the 2M-row dataset) and measures
// workload labelling through the coordinator-side ClusterEvaluator
// against the in-process single-node `shards = N` evaluator:
//
//  - cluster labels must be BIT-IDENTICAL to single-node at every fleet
//    size (the coordinator replays the exact in-process merge fold);
//  - 2 workers must deliver >= 1.6x labelling speedup over 1 worker
//    (the scan work halves; wire codec overhead must not eat it).
//    Worker processes can only overlap where cores exist, so on a
//    single-core host this gate degrades to an overhead bound: 2
//    workers may cost at most 1.35x the 1-worker wall clock;
//  - after SIGKILLing one worker mid-fleet, a re-run must still
//    complete with bit-identical labels via shard-group re-homing,
//    reported degraded.
//
// Workers are forked BEFORE any thread exists in the parent, and
// inherit the dataset by copy-on-write — identical bytes by
// construction. Writes BENCH_dist.json (override with
// SURF_BENCH_DIST_JSON).

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/workload.h"
#include "data/sharded.h"
#include "dist/cluster_evaluator.h"
#include "dist/worker_pool.h"
#include "net/http_server.h"
#include "net/metrics.h"
#include "net/surf_handler.h"
#include "serve/fingerprint.h"
#include "serve/mining_service.h"
#include "stats/sharded_evaluator.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/stopwatch.h"

using namespace surf;

namespace {

Dataset MakeData(size_t rows, uint64_t seed) {
  Dataset ds({"x", "y", "v"});
  ds.Reserve(rows);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    double x = rng.Uniform(0.0, 10.0);
    double y = rng.Uniform(0.0, 10.0);
    if (rng.Bernoulli(0.2)) {
      x = rng.Gaussian(7.0, 0.5);
      y = rng.Gaussian(3.0, 0.5);
    }
    ds.AddRow({x, y, rng.Gaussian(1.0, 2.0)});
  }
  return ds;
}

bool BitIdentical(const std::vector<double>& a,
                  const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const bool nan_a = std::isnan(a[i]), nan_b = std::isnan(b[i]);
    if (nan_a != nan_b) return false;
    if (!nan_a && a[i] != b[i]) return false;
  }
  return true;
}

/// Child body: one worker surfd serving the forked dataset until killed.
/// Never returns.
[[noreturn]] void RunWorker(const Dataset& ds, int port_fd) {
  MiningService service;
  if (!service.RegisterDataset("bench", ds).ok()) _exit(2);
  ServerMetrics metrics;
  SurfHandler handler(&service, &metrics);
  HttpServer::Options options;
  options.port = 0;
  HttpServer server(options, handler.AsHttpHandler());
  if (!server.Start().ok()) _exit(3);
  const uint16_t port = server.port();
  if (::write(port_fd, &port, sizeof(port)) != sizeof(port)) _exit(4);
  ::close(port_fd);
  while (true) ::pause();  // serve until SIGKILLed by the parent
}

struct WorkerProc {
  pid_t pid = -1;
  uint16_t port = 0;
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(port);
  }
};

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const size_t rows =
      static_cast<size_t>(flags.GetInt("rows", 20000000));
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 48));
  const size_t num_shards =
      static_cast<size_t>(flags.GetInt("shards", 8));

  std::printf(
      "== distributed scatter-gather labelling (%zu rows, %zu queries, "
      "%zu shards) ==\n",
      rows, queries, num_shards);
  const Dataset ds = MakeData(rows, 2026);
  const uint64_t fingerprint = FingerprintDataset(ds);

  // Fork the worker fleet before any thread exists in this process.
  std::fflush(stdout);
  std::vector<WorkerProc> workers(2);
  for (WorkerProc& worker : workers) {
    int pipe_fd[2];
    if (::pipe(pipe_fd) != 0) {
      std::perror("pipe");
      return 1;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      ::close(pipe_fd[0]);
      RunWorker(ds, pipe_fd[1]);
    }
    ::close(pipe_fd[1]);
    worker.pid = pid;
    if (::read(pipe_fd[0], &worker.port, sizeof(worker.port)) !=
        sizeof(worker.port)) {
      std::fprintf(stderr, "worker %d never reported a port\n", pid);
      return 1;
    }
    ::close(pipe_fd[0]);
    std::printf("worker pid %d on %s\n", pid, worker.endpoint().c_str());
  }
  const auto kill_fleet = [&workers] {
    for (WorkerProc& worker : workers) {
      if (worker.pid > 0) {
        ::kill(worker.pid, SIGKILL);
        ::waitpid(worker.pid, nullptr, 0);
        worker.pid = -1;
      }
    }
  };

  // Count keeps wire partials tiny (one accumulator, no sketch), so at
  // this row count the scatter is scan-dominated — the regime where
  // adding workers pays.
  const Statistic stat = Statistic::Count({0, 1});
  const Bounds domain = ds.ComputeBounds(stat.region_cols);
  WorkloadParams params;
  params.num_queries = queries;
  params.seed = 11;

  // --- single-node reference: the exact evaluator MakeEvaluator builds
  // for shards = N (range partition on the first box column), one
  // thread — the same fold the coordinator must replay bit for bit.
  double single_seconds = 0.0;
  std::vector<double> single_targets;
  {
    ShardingOptions options;
    options.num_shards = num_shards;
    options.order_by = 0;
    options.columns = {0, 1};
    ShardedScanEvaluator single(ShardedDataset::Partition(ds, options),
                                stat, /*num_threads=*/1);
    Stopwatch timer;
    single_targets = GenerateWorkload(single, domain, params).targets;
    single_seconds = timer.ElapsedSeconds();
  }
  std::printf("single-node: %.3fs (%.1f labels/s)\n", single_seconds,
              queries / single_seconds);

  // --- cluster arms at 1 and 2 workers over the same partition.
  struct Arm {
    size_t fleet = 0;
    double seconds = 0.0;
    bool bit_identical = false;
  };
  std::vector<Arm> arms;
  std::vector<std::unique_ptr<dist::WorkerPool>> pools;
  for (size_t fleet : {size_t{1}, size_t{2}}) {
    std::vector<std::string> endpoints;
    for (size_t i = 0; i < fleet; ++i) {
      endpoints.push_back(workers[i].endpoint());
    }
    pools.push_back(std::make_unique<dist::WorkerPool>(endpoints));
    dist::ClusterEvaluator::Options options;
    options.dataset = "bench";
    options.fingerprint = fingerprint;
    options.num_shards = num_shards;
    dist::ClusterEvaluator cluster(pools.back().get(), stat, options);

    // Warm the worker-side partition caches so arm timing measures
    // labelling, not one-time partition builds (identical across arms).
    WorkloadParams warm = params;
    warm.num_queries = 2;
    (void)GenerateWorkload(cluster, domain, warm);

    Stopwatch timer;
    const std::vector<double> targets =
        GenerateWorkload(cluster, domain, params).targets;
    Arm arm;
    arm.fleet = fleet;
    arm.seconds = timer.ElapsedSeconds();
    arm.bit_identical = BitIdentical(single_targets, targets);
    if (cluster.degraded()) {
      std::fprintf(stderr, "FAIL: clean fleet degraded: %s\n",
                   cluster.degraded_reason().c_str());
      kill_fleet();
      return 1;
    }
    std::printf("workers=%zu  : %.3fs (%.2fx vs single-node) | "
                "identical: %s\n",
                fleet, arm.seconds, single_seconds / arm.seconds,
                arm.bit_identical ? "yes" : "NO");
    arms.push_back(arm);
  }
  const double speedup_2_workers = arms[0].seconds / arms[1].seconds;
  std::printf("2-worker scaling: %.2fx over 1 worker\n", speedup_2_workers);

  // --- fault tolerance: SIGKILL one worker, re-run on the 2-worker
  // pool. The dead worker's shard groups must re-home onto the
  // survivor: same bits, degraded provenance, no hang.
  ::kill(workers[1].pid, SIGKILL);
  ::waitpid(workers[1].pid, nullptr, 0);
  workers[1].pid = -1;
  std::printf("killed worker on %s\n", workers[1].endpoint().c_str());

  double killed_seconds = 0.0;
  bool killed_identical = false;
  std::string killed_reason;
  {
    dist::ClusterEvaluator::Options options;
    options.dataset = "bench";
    options.fingerprint = fingerprint;
    options.num_shards = num_shards;
    dist::ClusterEvaluator cluster(pools[1].get(), stat, options);
    Stopwatch timer;
    const std::vector<double> targets =
        GenerateWorkload(cluster, domain, params).targets;
    killed_seconds = timer.ElapsedSeconds();
    killed_identical = BitIdentical(single_targets, targets);
    killed_reason = cluster.degraded_reason();
    if (!cluster.degraded()) {
      std::fprintf(stderr, "FAIL: killed-worker run was not degraded\n");
      kill_fleet();
      return 1;
    }
  }
  std::printf("killed-worker run: %.3fs | identical: %s | %s\n",
              killed_seconds, killed_identical ? "yes" : "NO",
              killed_reason.c_str());
  kill_fleet();

  const char* json_env = std::getenv("SURF_BENCH_DIST_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_dist.json";
  if (FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"rows\": %zu,\n"
                 "  \"queries\": %zu,\n"
                 "  \"num_shards\": %zu,\n"
                 "  \"single_node_seconds\": %.4f,\n"
                 "  \"arms\": [\n",
                 rows, queries, num_shards, single_seconds);
    for (size_t i = 0; i < arms.size(); ++i) {
      std::fprintf(f,
                   "    {\"workers\": %zu, \"seconds\": %.4f, "
                   "\"bit_identical\": %s}%s\n",
                   arms[i].fleet, arms[i].seconds,
                   arms[i].bit_identical ? "true" : "false",
                   i + 1 < arms.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n"
                 "  \"hardware_cores\": %u,\n"
                 "  \"speedup_2_workers\": %.2f,\n"
                 "  \"killed_worker_seconds\": %.4f,\n"
                 "  \"killed_worker_bit_identical\": %s,\n"
                 "  \"killed_worker_degraded_reason\": \"%s\"\n"
                 "}\n",
                 std::thread::hardware_concurrency(), speedup_2_workers,
                 killed_seconds, killed_identical ? "true" : "false",
                 killed_reason.c_str());
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
  }

  // Acceptance gates: red CI instead of a silently regressed report.
  bool ok = true;
  for (const Arm& arm : arms) {
    if (!arm.bit_identical) {
      std::fprintf(stderr,
                   "FAIL: %zu-worker cluster labels diverged from "
                   "single-node\n",
                   arm.fleet);
      ok = false;
    }
  }
  if (!killed_identical) {
    std::fprintf(stderr,
                 "FAIL: killed-worker run diverged from single-node\n");
    ok = false;
  }
  constexpr double kMinSpeedup = 1.6;
  constexpr double kMaxSingleCoreOverhead = 1.35;
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 2) {
    if (speedup_2_workers < kMinSpeedup) {
      std::fprintf(stderr,
                   "FAIL: 2-worker labelling speedup %.2fx below %.1fx "
                   "floor\n",
                   speedup_2_workers, kMinSpeedup);
      ok = false;
    }
  } else {
    // Two CPU-bound processes cannot overlap on one core; hold the
    // distribution overhead instead of the parallel speedup.
    std::printf("single core: %.1fx speedup gate waived, holding "
                "2-worker overhead under %.2fx\n",
                kMinSpeedup, kMaxSingleCoreOverhead);
    if (arms[1].seconds > kMaxSingleCoreOverhead * arms[0].seconds) {
      std::fprintf(stderr,
                   "FAIL: 2-worker run cost %.2fx the 1-worker run on a "
                   "single core (max %.2fx)\n",
                   arms[1].seconds / arms[0].seconds,
                   kMaxSingleCoreOverhead);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
