#ifndef SURF_DATA_SYNTHETIC_H_
#define SURF_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "geom/region.h"
#include "util/rng.h"

namespace surf {

/// \brief The two statistic families exercised by the paper's synthetic
/// evaluation (§V-A): 'density' (region population count) and 'aggregate'
/// (mean of an attribute column over the region).
enum class SyntheticStatistic { kDensity, kAggregate };

/// \brief Parameters of one synthetic dataset with planted ground truth.
///
/// The paper creates 20 datasets by crossing number of ground-truth (GT)
/// regions k ∈ {1,3}, statistic type ∈ {density, aggregate}, and data
/// dimensionality d ∈ {1..5}. GT regions are hyper-rectangles inside the
/// unit cube that are either denser than the background or carry a higher
/// attribute mean.
struct SyntheticSpec {
  size_t dims = 2;
  size_t num_gt_regions = 1;
  SyntheticStatistic statistic = SyntheticStatistic::kDensity;
  /// Background population size (paper: 7,500–12,500 points).
  size_t num_background = 10000;
  /// Density datasets: target total point count per GT region (background
  /// + injected). 0 = auto: 2000 · max(1, dims − 1), i.e. ≈ 2 × the
  /// paper's y_R = 1000 in low dimensions, growing with d. The growth
  /// compensates tree-surrogate smoothing: random training boxes almost
  /// never cover a full GT region in higher dimensions, so the learned
  /// peak is a fraction of the true count and must still clear y_R for a
  /// valid basin to exist (the paper compensates along the same axis by
  /// scaling training workloads 300 → 300K with d). When the background
  /// alone already exceeds the target (d = 1), nothing extra is injected.
  size_t gt_target_count = 0;

  /// The resolved target (auto rule applied when gt_target_count == 0).
  size_t EffectiveGtTargetCount() const;
  /// Minimum injected points per GT region (keeps regions distinctly
  /// denser than their surroundings even when the background is heavy).
  size_t min_injected_points = 200;
  /// GT half side-length per dimension as a fraction of the unit domain.
  double gt_half_side = 0.15;
  /// Attribute distribution: background ~ N(mean_out, sd), inside GT
  /// ~ N(mean_in, sd). Paper threshold y_R = 2 for aggregates, so
  /// mean_in = 3 keeps GT regions clearly above it.
  double value_mean_out = 0.0;
  double value_mean_in = 3.0;
  double value_sd = 1.0;
  uint64_t seed = 42;

  /// Short id such as "den_d3_k1" used in logs and experiment reports.
  std::string Name() const;
};

/// \brief A generated dataset plus its planted ground truth.
struct SyntheticDataset {
  SyntheticSpec spec;
  /// Columns: a1..ad (region dimensions) and, for aggregate datasets, a
  /// trailing "value" column that the statistic averages.
  Dataset data;
  /// The planted GT regions (over the region dimensions only).
  std::vector<Region> gt_regions;
  /// True statistic value of each GT region (count or mean value).
  std::vector<double> gt_statistics;
  /// Column indices spanning the region space.
  std::vector<size_t> region_cols;
  /// Column index of the aggregate value column (-1 for density).
  int value_col = -1;
};

/// \brief Generates the paper's synthetic ground-truth datasets.
class SyntheticGenerator {
 public:
  /// Generates one dataset from a spec. GT regions are placed so they do
  /// not overlap (separation enforced by rejection sampling).
  static SyntheticDataset Generate(const SyntheticSpec& spec);

  /// The full 2 (k) × 2 (statistic) × 5 (dims) grid = the paper's 20
  /// datasets, with seeds derived from `base_seed`.
  static std::vector<SyntheticSpec> PaperGrid(uint64_t base_seed = 42);
};

}  // namespace surf

#endif  // SURF_DATA_SYNTHETIC_H_
