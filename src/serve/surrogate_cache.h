#ifndef SURF_SERVE_SURROGATE_CACHE_H_
#define SURF_SERVE_SURROGATE_CACHE_H_

/// \file
/// \brief The keyed surrogate cache: single-flight training, LRU/staleness eviction, warm-start swaps, provenance.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/surrogate.h"
#include "core/workload.h"
#include "ml/kde.h"
#include "serve/fingerprint.h"
#include "stats/evaluator.h"
#include "util/cancel.h"
#include "util/status.h"

namespace surf {

/// \brief Declared provenance/fidelity metadata carried by every cache
/// entry (the SMRS argument: a surrogate must ship with its pedigree, not
/// just its weights).
struct SurrogateProvenance {
  /// Content fingerprint of the dataset the surrogate was trained on.
  uint64_t dataset_fingerprint = 0;
  /// Number of labelled region evaluations the model has seen (initial
  /// training plus every folded-in warm-start batch).
  size_t training_set_size = 0;
  /// Cross-validated RMSE of the training recipe (NaN when the service
  /// was configured to skip CV; see MiningService::Options).
  double cv_rmse = std::numeric_limits<double>::quiet_NaN();
  /// Out-of-sample RMSE on the held-out test fraction.
  double holdout_rmse = 0.0;
  /// Cumulative training wall-time (initial fit + warm starts), seconds.
  double train_seconds = 0.0;
  /// How many warm-start refreshes have been folded into the model.
  size_t warm_starts = 0;
  /// Evaluations appended but not yet folded in by a warm start.
  size_t pending_examples = 0;
  /// True when this model was served in a degraded mode — a stale entry
  /// kept alive because its retrain failed, or served while a
  /// revalidation was still in flight. Degraded answers are labelled,
  /// never silently substituted (the SMRS argument).
  bool degraded = false;
  /// Why the entry is degraded (e.g. "training failed: ..."), empty
  /// when `degraded` is false.
  std::string degraded_reason;
};

/// \brief Immutable view of a cached surrogate taken at request time.
///
/// Holding a snapshot pins the model: a concurrent warm-start swap or
/// cache eviction never invalidates it, so one mining request observes
/// one consistent model from start to finish.
struct SurrogateSnapshot {
  /// The trained model serving this snapshot.
  std::shared_ptr<const Surrogate> surrogate;
  /// KDE data prior for Eq. 8 guidance (null when disabled).
  std::shared_ptr<const Kde> kde;
  /// Exact back-end for result validation and fresh labelling (never
  /// null for service-built entries).
  std::shared_ptr<const RegionEvaluator> evaluator;
  /// Solution space the surrogate is valid over.
  RegionSolutionSpace space;
  /// Declared pedigree of the model at snapshot time.
  SurrogateProvenance provenance;
};

/// \brief What a cache-miss factory must produce: the trained surrogate
/// plus its companions.
struct TrainedSurrogate {
  /// The freshly trained model.
  Surrogate surrogate;
  /// KDE data prior (null when not fitted).
  std::shared_ptr<const Kde> kde;
  /// Exact evaluator for validation (null when not built).
  std::shared_ptr<const RegionEvaluator> evaluator;
  /// CV RMSE to declare in the provenance (NaN = not computed).
  double cv_rmse = std::numeric_limits<double>::quiet_NaN();
};

/// \brief One cache slot: a swappable surrogate plus the pending
/// incremental workload feeding its next warm start.
///
/// Thread-safe. Readers call Snapshot(); writers call Append(). A warm
/// start triggered by Append retrains on a deep copy while the old model
/// keeps serving, then swaps atomically under the entry lock.
class CachedSurrogate {
 public:
  /// Current model + provenance, atomically consistent.
  SurrogateSnapshot Snapshot() const;

  /// Accumulates freshly observed region evaluations. Once the pending
  /// pool reaches `retrain_threshold` (and no other thread is already
  /// retraining), this call performs the warm start inline: the pending
  /// batch is folded into a copy of the model via `warm_start_trees`
  /// extra boosting rounds, and the refreshed model is swapped in.
  /// Concurrent Snapshot() callers are never blocked by the retrain
  /// itself — only by the microsecond swap.
  Status Append(const RegionWorkload& fresh);

  /// Entry provenance without taking a full snapshot.
  SurrogateProvenance provenance() const;

 private:
  friend class SurrogateCache;

  enum class State { kTraining, kReady, kFailed };

  CachedSurrogate(size_t retrain_threshold, size_t warm_start_trees)
      : retrain_threshold_(retrain_threshold),
        warm_start_trees_(warm_start_trees) {}

  /// Publishes the factory result and wakes waiters (single-flight).
  void Publish(TrainedSurrogate trained, uint64_t dataset_fingerprint);
  void Fail(Status status);
  /// Fails the entry like Fail(), additionally attaching the degraded
  /// stale entry its waiters should be served instead of the error
  /// (stale-while-revalidate fallback). `fallback` may be null.
  void FailWithFallback(Status status, std::shared_ptr<CachedSurrogate> fallback);
  /// The degraded entry attached by FailWithFallback (null for plain
  /// failures).
  std::shared_ptr<CachedSurrogate> fallback() const;
  /// Labels the entry degraded in its provenance. Idempotent; the most
  /// recent reason wins (a later training failure overwrites an earlier
  /// "stale-while-revalidate").
  void MarkDegraded(const std::string& reason);
  /// Blocks until the entry leaves kTraining; returns the entry status.
  Status WaitReady() const;

  const size_t retrain_threshold_;
  const size_t warm_start_trees_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  State state_ = State::kTraining;
  Status status_ = Status::OK();

  std::shared_ptr<const Surrogate> model_;
  std::shared_ptr<const Kde> kde_;
  std::shared_ptr<const RegionEvaluator> evaluator_;
  RegionSolutionSpace space_;
  SurrogateProvenance provenance_;

  RegionWorkload pending_;
  bool has_pending_ = false;
  bool retraining_ = false;
  /// Degraded entry waiters are served instead of this entry's failure
  /// status (set by FailWithFallback; null otherwise).
  std::shared_ptr<CachedSurrogate> fallback_;
  std::chrono::steady_clock::time_point created_ =
      std::chrono::steady_clock::now();
};

/// \brief Keyed store of trained surrogates with single-flight training,
/// LRU capacity eviction, and age-based staleness eviction.
///
/// Concurrent GetOrTrain calls for the same key share one training run:
/// the first caller trains, the rest block until the entry is published
/// (so 32 identical requests cost one fit, not 32). Entries are handed
/// out as shared_ptrs — eviction drops the cache's reference, never a
/// request's.
class SurrogateCache {
 public:
  /// \brief Cache sizing, eviction, and warm-start policy.
  struct Options {
    /// Maximum resident entries; least-recently-used ready entries are
    /// evicted first. In-flight (training) entries are never evicted.
    size_t capacity = 8;
    /// Entries older than this are treated as stale on access and
    /// retrained from scratch (infinite = never stale).
    double max_age_seconds = std::numeric_limits<double>::infinity();
    /// Pending incremental evaluations that trigger a warm start.
    size_t retrain_threshold = 512;
    /// Boosting rounds added per warm start.
    size_t warm_start_trees = 25;

    // --- graceful degradation ---------------------------------------

    /// When a stale entry is being revalidated (retrained in a fresh
    /// slot), serve the previous model — flagged degraded — to callers
    /// arriving mid-retrain instead of blocking them on the fit. Should
    /// revalidation fail, the stale model also becomes the fallback
    /// answer (again flagged) rather than surfacing the error.
    bool stale_while_revalidate = true;
    /// Remember a key's training failure for this long and fail fast
    /// (with the remembered status) on re-requests inside the window,
    /// so a poisoned key cannot stampede retrains. 0 disables.
    double negative_ttl_seconds = 0.0;
    /// Consecutive training failures of one key that trip its circuit
    /// breaker; further requests fail fast with Unavailable (HTTP 503 +
    /// Retry-After) until the breaker closes. 0 disables the breaker.
    size_t breaker_failure_threshold = 0;
    /// How long a tripped breaker stays open before the next request is
    /// allowed to try training again (half-open probe).
    double breaker_open_seconds = 5.0;
  };

  /// \brief Monotonic counters for observability/tests.
  struct Stats {
    /// GetOrTrain calls served by an existing entry (including joins of
    /// an in-flight training).
    uint64_t hits = 0;
    /// GetOrTrain calls that created (and paid for) a new entry.
    uint64_t misses = 0;
    /// Entries dropped by LRU capacity enforcement.
    uint64_t evictions = 0;
    /// Entries dropped because they exceeded max_age_seconds.
    uint64_t stale_evictions = 0;
    /// Requests answered by a degraded (stale) model instead of a fresh
    /// fit or an error.
    uint64_t degraded_serves = 0;
    /// Requests failed fast by the negative cache (fresh remembered
    /// failure, no stale model to degrade to).
    uint64_t negative_hits = 0;
    /// Requests rejected Unavailable by an open circuit breaker (no
    /// stale model to degrade to).
    uint64_t breaker_rejections = 0;
    /// Training attempts (leader fits) that failed.
    uint64_t training_failures = 0;
  };

  /// Builds an entry on a miss. Runs outside the cache lock.
  using Factory = std::function<StatusOr<TrainedSurrogate>()>;

  /// Builds an empty cache with the given policy.
  explicit SurrogateCache(Options options) : options_(options) {}

  /// Returns the entry for `key`, training it via `factory` if absent or
  /// stale. `was_hit`, when non-null, reports whether an existing entry
  /// served the call (joining an in-flight training counts as a hit: the
  /// caller did not pay for a fit of its own).
  ///
  /// `caller` is the caller's own cancellation token. When an in-flight
  /// training leader is cancelled, its waiters are not stranded: every
  /// waiter whose own token is still live retries and one of them takes
  /// over as the new leader (training with its own factory/token), while
  /// waiters whose token has fired observe Cancelled.
  StatusOr<std::shared_ptr<CachedSurrogate>> GetOrTrain(
      const SurrogateKey& key, const Factory& factory,
      bool* was_hit = nullptr, CancelToken caller = {});

  /// Entry lookup without training or LRU touch; null when absent.
  std::shared_ptr<CachedSurrogate> Peek(const SurrogateKey& key) const;

  /// Suggested Retry-After (whole seconds, >= 1) for a key that was
  /// just refused: the remaining breaker-open time, else the remaining
  /// negative-cache TTL, else 1.
  int RetryAfterSeconds(const SurrogateKey& key) const;

  /// Drops every entry (outstanding snapshots stay valid).
  void Clear();

  /// Resident entry count (including in-flight trainings).
  size_t size() const;
  /// Counter snapshot.
  Stats stats() const;
  /// The configured policy.
  const Options& options() const { return options_; }

 private:
  struct Slot {
    std::shared_ptr<CachedSurrogate> entry;
    std::list<SurrogateKey>::iterator lru_pos;
    /// The previous (stale) model while `entry` is being revalidated:
    /// served degraded to mid-retrain callers, reinstated as the
    /// fallback when the revalidation fails, dropped when it succeeds.
    std::shared_ptr<CachedSurrogate> stale;
  };

  /// Per-key training-failure bookkeeping (negative cache + breaker).
  struct FailureState {
    /// Consecutive failed leader fits since the last success.
    size_t consecutive = 0;
    /// When the most recent failure happened (negative-cache clock).
    std::chrono::steady_clock::time_point last_failure{};
    /// Breaker-open horizon (epoch = closed).
    std::chrono::steady_clock::time_point open_until{};
    /// The remembered failure the negative cache replays.
    Status last_status = Status::OK();
  };

  /// Moves `key` to the front of the LRU list. Requires mu_ held.
  void Touch(const SurrogateKey& key, Slot* slot);
  /// Evicts LRU ready entries until size() <= capacity. Requires mu_ held.
  void EnforceCapacity();
  /// Records a failed leader fit (negative cache + breaker trip).
  /// Requires mu_ held.
  void RecordFailureLocked(const SurrogateKey& key, const Status& status);

  const Options options_;
  mutable std::mutex mu_;
  std::unordered_map<SurrogateKey, Slot, SurrogateKeyHash> map_;
  std::unordered_map<SurrogateKey, FailureState, SurrogateKeyHash> failures_;
  /// Front = most recently used.
  std::list<SurrogateKey> lru_;
  Stats stats_;
};

}  // namespace surf

#endif  // SURF_SERVE_SURROGATE_CACHE_H_
