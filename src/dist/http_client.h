#ifndef SURF_DIST_HTTP_CLIENT_H_
#define SURF_DIST_HTTP_CLIENT_H_

/// \file
/// \brief Minimal cancel-aware HTTP/1.1 client for coordinator→worker
/// RPCs.
///
/// Dependency-free like the server it talks to: POSIX sockets, one
/// request per connection (`Connection: close`), Content-Length framing.
/// Every blocking step — connect, send, receive — waits in short poll
/// slices that check the caller's CancelToken and the call deadline, so
/// a cancelled scatter releases its worker connections within ~10 ms
/// instead of holding sockets (and remote worker threads) until a
/// transport timeout. Failures map onto the retriable transport codes
/// (IOError/TimedOut/Cancelled); HTTP error answers are surfaced with
/// their status code so the caller decides retriability.

#include <cstdint>
#include <string>

#include "util/cancel.h"
#include "util/status.h"

namespace surf {
namespace dist {

/// \brief One parsed HTTP reply: status code + body.
struct HttpReply {
  int status_code = 0;
  std::string body;
};

/// Splits "host:port" into its parts. InvalidArgument on a missing or
/// non-numeric port. Host may be a dotted quad or anything inet_pton /
/// "localhost" resolves to (no DNS — "localhost" maps to 127.0.0.1).
Status ParseEndpoint(const std::string& endpoint, std::string* host,
                     uint16_t* port);

/// One blocking request against `host:port`. `timeout_seconds` bounds
/// the whole call (connect + send + receive); `cancel` aborts it early
/// with Cancelled. Network failures return IOError (peer down, reset,
/// short response) or TimedOut; an HTTP answer of any status parses
/// into an OK HttpReply.
StatusOr<HttpReply> HttpCall(const std::string& host, uint16_t port,
                             const std::string& method,
                             const std::string& target,
                             const std::string& body, double timeout_seconds,
                             const CancelToken& cancel);

/// POST convenience over HttpCall.
inline StatusOr<HttpReply> HttpPost(const std::string& host, uint16_t port,
                                    const std::string& target,
                                    const std::string& body,
                                    double timeout_seconds,
                                    const CancelToken& cancel) {
  return HttpCall(host, port, "POST", target, body, timeout_seconds, cancel);
}

/// GET convenience over HttpCall.
inline StatusOr<HttpReply> HttpGet(const std::string& host, uint16_t port,
                                   const std::string& target,
                                   double timeout_seconds,
                                   const CancelToken& cancel) {
  return HttpCall(host, port, "GET", target, "", timeout_seconds, cancel);
}

}  // namespace dist
}  // namespace surf

#endif  // SURF_DIST_HTTP_CLIENT_H_
