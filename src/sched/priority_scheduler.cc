#include "sched/priority_scheduler.h"

#include <algorithm>

#if defined(__linux__)
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace surf::sched {

namespace {

/// Drops the calling thread's scheduling priority to the weakest nice
/// level, so the kernel preempts it whenever a normal-priority thread
/// (an interactive worker) becomes runnable. Linux-only: setpriority
/// with PRIO_PROCESS and id 0 applies to the calling *thread* there.
void DropThreadPriority() {
#if defined(__linux__)
  ::setpriority(PRIO_PROCESS, 0, 19);
#endif
}

}  // namespace

PriorityScheduler::PriorityScheduler(Options options) : options_(options) {
  options_.interactive_workers = std::max<size_t>(1, options_.interactive_workers);
  options_.batch_workers = std::max<size_t>(1, options_.batch_workers);
  workers_.reserve(options_.interactive_workers + options_.batch_workers);
  for (size_t i = 0; i < options_.interactive_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(JobClass::kInteractive); });
  }
  for (size_t i = 0; i < options_.batch_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(JobClass::kBatch); });
  }
}

PriorityScheduler::~PriorityScheduler() { Shutdown(); }

bool PriorityScheduler::Submit(Job job) {
  std::function<void()> shed_now;
  bool accepted = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      // Late submit during teardown: treat as shed so the caller still
      // answers the client instead of leaking a promise.
      shed_now = std::move(job.shed);
      ++stats_.shed;
      accepted = false;
    } else {
      const size_t depth = interactive_queue_.size() + batch_queue_.size();
      if (options_.max_queue_depth > 0 && depth >= options_.max_queue_depth) {
        // Overload: abandon the cheapest-to-cancel work first — a
        // not-yet-started batch job has zero sunk cost and the loosest
        // latency expectations. The heap root is the *earliest*
        // deadline, so scan for the worst (farthest-deadline) victim;
        // the backlog is bounded by max_queue_depth, so this stays
        // cheap. An incoming batch job only displaces a queued one
        // that is strictly worse than itself.
        auto worst = std::max_element(
            batch_queue_.begin(), batch_queue_.end(),
            [](const QueuedJob& a, const QueuedJob& b) {
              return Later(b, a);  // true when a sorts earlier than b
            });
        const bool displace =
            worst != batch_queue_.end() &&
            (job.cls == JobClass::kInteractive ||
             worst->deadline > job.deadline ||
             (worst->deadline == job.deadline));
        if (displace) {
          shed_now = std::move(worst->shed);
          batch_queue_.erase(worst);
          std::make_heap(batch_queue_.begin(), batch_queue_.end(), Later);
          ++stats_.shed;
        } else {
          shed_now = std::move(job.shed);
          ++stats_.shed;
          accepted = false;
        }
      }
      if (accepted) {
        QueuedJob queued;
        queued.deadline = job.deadline;
        queued.seq = next_seq_++;
        queued.run = std::move(job.run);
        queued.shed = std::move(job.shed);
        if (job.cls == JobClass::kInteractive) {
          interactive_queue_.push_back(std::move(queued));
          std::push_heap(interactive_queue_.begin(), interactive_queue_.end(),
                         Later);
          interactive_cv_.notify_one();
        } else {
          batch_queue_.push_back(std::move(queued));
          std::push_heap(batch_queue_.begin(), batch_queue_.end(), Later);
          batch_cv_.notify_one();
        }
      }
    }
  }
  if (shed_now) shed_now();
  return accepted;
}

void PriorityScheduler::WorkerLoop(JobClass cls) {
  if (cls == JobClass::kBatch && options_.nice_batch_workers) {
    DropThreadPriority();
  }
  std::vector<QueuedJob>& queue =
      cls == JobClass::kInteractive ? interactive_queue_ : batch_queue_;
  std::condition_variable& cv =
      cls == JobClass::kInteractive ? interactive_cv_ : batch_cv_;
  while (true) {
    QueuedJob job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv.wait(lock, [&] { return shutting_down_ || !queue.empty(); });
      if (queue.empty()) return;  // shutting down and drained
      std::pop_heap(queue.begin(), queue.end(), Later);
      job = std::move(queue.back());
      queue.pop_back();
      if (cls == JobClass::kInteractive) {
        ++stats_.executed_interactive;
      } else {
        ++stats_.executed_batch;
      }
    }
    if (job.run) job.run();
  }
}

void PriorityScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  interactive_cv_.notify_all();
  batch_cv_.notify_all();
  // Serialize the joins so concurrent Shutdown() calls are safe: the
  // second caller waits here until the first finished joining.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

PriorityScheduler::Stats PriorityScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = stats_;
  out.queued = interactive_queue_.size() + batch_queue_.size();
  return out;
}

}  // namespace surf::sched
