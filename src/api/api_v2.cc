#include "api/api_v2.h"

#include <cmath>

#include "api/api.h"

namespace surf {
namespace v2 {

Status ValidateAndNormalize(MineRequest* request) {
  if (request == nullptr) {
    return Status::InvalidArgument("null request");
  }
  if (request->api_version < kApiMinVersion ||
      request->api_version > kApiVersion) {
    return Status::InvalidArgument(
        "unsupported api_version " + std::to_string(request->api_version) +
        " (this build accepts v" + std::to_string(kApiMinVersion) + "..v" +
        std::to_string(kApiVersion) + ")");
  }
  if (request->dataset.empty()) {
    return Status::InvalidArgument("field 'dataset' is required");
  }
  if (request->query.statistic.region_cols.empty()) {
    return Status::InvalidArgument(
        "statistic.region_cols must name at least one column");
  }
  if (request->query.kind == QueryKind::kThreshold &&
      !std::isfinite(request->query.threshold)) {
    return Status::InvalidArgument("threshold must be finite");
  }
  if (request->query.kind == QueryKind::kTopK && request->search.topk.k == 0) {
    return Status::InvalidArgument("top-k queries need k >= 1");
  }
  if (request->execution.record_evaluations && !request->execution.validate) {
    return Status::InvalidArgument(
        "record_evaluations requires validate: recorded evaluations are the "
        "validated true statistics, which an unvalidated request never "
        "computes");
  }
  if (request->training.workload.num_queries == 0) {
    return Status::InvalidArgument(
        "training.workload.num_queries must be >= 1");
  }
  if (std::isnan(request->execution.deadline_seconds) ||
      request->execution.deadline_seconds < 0.0) {
    return Status::InvalidArgument(
        "deadline_seconds must be >= 0 (0 = no deadline)");
  }
  if (request->execution.shards == 0) {
    request->execution.shards = 1;  // normalize "unset" to the v1 default
  }
  if (request->execution.shards > kMaxExecutionShards) {
    return Status::InvalidArgument(
        "execution.shards must be <= " + std::to_string(kMaxExecutionShards));
  }
  return Status::OK();
}

surf::MineRequest ToLegacy(const MineRequest& request) {
  surf::MineRequest legacy;
  legacy.dataset = request.dataset;
  legacy.statistic = request.query.statistic;
  legacy.threshold = request.query.threshold;
  legacy.direction = request.query.direction;
  legacy.mode = request.query.kind == QueryKind::kTopK
                    ? surf::MineRequest::Mode::kTopK
                    : surf::MineRequest::Mode::kThreshold;
  legacy.topk = request.search.topk;
  legacy.finder = request.search.finder;
  legacy.workload = request.training.workload;
  legacy.surrogate = request.training.surrogate;
  legacy.backend = request.execution.backend;
  legacy.shards = request.execution.shards;
  legacy.cluster = request.execution.cluster;
  legacy.use_kde = request.execution.use_kde;
  legacy.validate = request.execution.validate;
  legacy.record_evaluations = request.execution.record_evaluations;
  legacy.trace = request.execution.trace;
  return legacy;
}

MineRequest FromLegacy(const surf::MineRequest& request) {
  MineRequest v2;
  v2.api_version = kApiMinVersion;
  v2.dataset = request.dataset;
  v2.query.statistic = request.statistic;
  v2.query.kind = request.mode == surf::MineRequest::Mode::kTopK
                      ? QueryKind::kTopK
                      : QueryKind::kThreshold;
  v2.query.threshold = request.threshold;
  v2.query.direction = request.direction;
  v2.search.topk = request.topk;
  v2.search.finder = request.finder;
  v2.training.workload = request.workload;
  v2.training.surrogate = request.surrogate;
  v2.execution.backend = request.backend;
  v2.execution.shards = request.shards;
  v2.execution.cluster = request.cluster;
  v2.execution.use_kde = request.use_kde;
  v2.execution.validate = request.validate;
  v2.execution.record_evaluations = request.record_evaluations;
  v2.execution.trace = request.trace;
  return v2;
}

Status ValidateLegacy(const surf::MineRequest& request) {
  MineRequest lifted = FromLegacy(request);
  return ValidateAndNormalize(&lifted);
}

MineResponse FromLegacyResponse(surf::MineResponse response) {
  MineResponse v2;
  v2.status = std::move(response.status);
  v2.result = std::move(response.result);
  v2.topk = std::move(response.topk);
  v2.cache_hit = response.cache_hit;
  v2.provenance = response.provenance;
  v2.total_seconds = response.total_seconds;
  v2.trace = std::move(response.trace);
  return v2;
}

}  // namespace v2
}  // namespace surf
