#ifndef SURF_SCHED_TENANT_GOVERNOR_H_
#define SURF_SCHED_TENANT_GOVERNOR_H_

/// \file
/// \brief Per-tenant QoS: token-bucket rate limiting plus concurrency
/// quotas, keyed by the value of a tenant header.
///
/// The HTTP server asks the governor once per admitted request:
/// `Admit(tenant, now)` charges one token from the tenant's bucket and
/// takes one concurrency slot; `Release(tenant)` returns the slot when
/// the response is written. Tenants with no configured limits (and the
/// anonymous "default" tenant, unless limited explicitly) are
/// unlimited, so single-tenant deployments pay one map lookup and
/// nothing else.

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "util/status.h"

namespace surf::sched {

/// \brief Token-bucket + quota limits for one tenant (0 = unlimited).
struct TenantLimits {
  /// Sustained requests per second the bucket refills at.
  double rate = 0.0;
  /// Bucket capacity — the burst admitted after an idle period. When
  /// `rate` is set but burst is 0, burst defaults to max(rate, 1).
  double burst = 0.0;
  /// Concurrently in-flight requests allowed.
  size_t max_inflight = 0;
};

/// \brief Admission governor over all tenants.
class TenantGovernor {
 public:
  using Clock = std::chrono::steady_clock;

  struct Options {
    /// Limits applied to tenants without an explicit entry.
    TenantLimits default_limits;
    /// Per-tenant overrides (tenant header value → limits).
    std::map<std::string, TenantLimits> per_tenant;
  };

  enum class Decision {
    kAdmit,      ///< Token charged, slot taken; caller must Release().
    kThrottled,  ///< Rate limit: bucket empty (429, retryable soon).
    kOverQuota,  ///< Concurrency quota exhausted (429 until a Release).
  };

  /// \brief Monotonic counters.
  struct Stats {
    uint64_t admitted = 0;
    uint64_t throttled = 0;
    uint64_t over_quota = 0;
  };

  explicit TenantGovernor(Options options) : options_(std::move(options)) {}

  /// Charges `tenant` for one request at time `now`. On kAdmit the
  /// caller owes a Release() when the request finishes.
  Decision Admit(const std::string& tenant, Clock::time_point now);

  /// Returns `tenant`'s concurrency slot.
  void Release(const std::string& tenant);

  Stats stats() const;

  /// Parses one limits spec "RATE:BURST:QUOTA" (each field a
  /// non-negative number, 0 = unlimited), e.g. "5:10:2".
  static Status ParseLimits(const std::string& spec, TenantLimits* out);

  /// Parses a per-tenant spec list "TENANT=RATE:BURST:QUOTA[,...]" into
  /// `options->per_tenant` (merging over what is there).
  static Status ParseTenantSpec(const std::string& spec, Options* options);

 private:
  struct Bucket {
    double tokens = 0.0;
    bool primed = false;  ///< Bucket starts full on first sight.
    Clock::time_point refilled_at{};
    size_t inflight = 0;
  };

  const TenantLimits& LimitsFor(const std::string& tenant) const;

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
  Stats stats_;
};

}  // namespace surf::sched

#endif  // SURF_SCHED_TENANT_GOVERNOR_H_
