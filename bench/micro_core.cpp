// Microbenchmarks (google-benchmark) for the hot paths every experiment
// leans on: surrogate prediction, GBRT tree traversal, KDE region-mass
// integrals, exact range queries across the three back-ends, GSO
// iterations, and IoU math.
//
// Before the google-benchmark suite, main() runs the GBRT engine speedup
// report: the reworked engine (contiguous bins, sibling histogram
// subtraction, leaf-range boosting updates, blocked copy-free batch
// prediction) against a faithful port of the original single-thread
// implementation, at 1 and 8 threads, verifying bit-identical predictions
// across thread counts. Results land in BENCH_gbrt.json (override the
// path with SURF_BENCH_JSON). Pass --speedup-only to skip the benchmark
// suite, e.g. in CI perf smoke jobs.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "accel/accel.h"
#include "bench_common.h"
#include "legacy_gbrt.h"
#include "ml/kde.h"
#include "stats/grid_index.h"
#include "stats/kd_tree.h"
#include "util/stopwatch.h"
#include "util/trace.h"

namespace surf {
namespace {

/// Shared fixtures, built once.
struct MicroFixture {
  SyntheticDataset ds;
  std::unique_ptr<ScanEvaluator> scan;
  std::unique_ptr<GridIndexEvaluator> grid;
  std::unique_ptr<KdTreeEvaluator> kdtree;
  Surrogate surrogate;
  std::unique_ptr<Kde> kde;
  RegionSolutionSpace space;
  std::vector<Region> probes;

  static MicroFixture& Get() {
    static MicroFixture* fixture = [] {
      auto* f = new MicroFixture();
      SyntheticSpec spec;
      spec.dims = 2;
      spec.num_gt_regions = 1;
      spec.statistic = SyntheticStatistic::kDensity;
      spec.num_background = 50000;
      spec.seed = 3;
      f->ds = SyntheticGenerator::Generate(spec);
      const Statistic stat = Statistic::Count(f->ds.region_cols);
      f->scan = std::make_unique<ScanEvaluator>(&f->ds.data, stat);
      f->grid =
          std::make_unique<GridIndexEvaluator>(&f->ds.data, stat, 16);
      f->kdtree = std::make_unique<KdTreeEvaluator>(&f->ds.data, stat);

      WorkloadParams wparams;
      wparams.num_queries = 4000;
      const RegionWorkload workload = GenerateWorkload(
          *f->grid, f->ds.data.ComputeBounds(f->ds.region_cols), wparams);
      f->space = workload.space;
      auto surrogate = Surrogate::Train(workload, SurrogateTrainOptions{});
      f->surrogate = std::move(surrogate).value();

      Rng rng(4);
      std::vector<std::vector<double>> points;
      for (size_t r = 0; r < 2000; ++r) {
        points.push_back(
            {f->ds.data.Get(r, 0), f->ds.data.Get(r, 1)});
      }
      f->kde = std::make_unique<Kde>(Kde::Fit(points));
      for (int i = 0; i < 256; ++i) f->probes.push_back(
          f->space.Sample(&rng));
      return f;
    }();
    return *fixture;
  }
};

void BM_SurrogatePredict(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.surrogate.Predict(f.probes[i++ & 255]));
  }
}
BENCHMARK(BM_SurrogatePredict);

void BM_SurrogateEvaluateMany(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.surrogate.EvaluateMany(f.probes));
  }
}
BENCHMARK(BM_SurrogateEvaluateMany);

void BM_ScanEvaluate(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.scan->Evaluate(f.probes[i++ & 255]));
  }
}
BENCHMARK(BM_ScanEvaluate);

void BM_GridIndexEvaluate(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.grid->Evaluate(f.probes[i++ & 255]));
  }
}
BENCHMARK(BM_GridIndexEvaluate);

void BM_KdTreeEvaluate(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.kdtree->Evaluate(f.probes[i++ & 255]));
  }
}
BENCHMARK(BM_KdTreeEvaluate);

void BM_KdeRegionMass(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.kde->RegionMass(f.probes[i++ & 255]));
  }
}
BENCHMARK(BM_KdeRegionMass);

void BM_RegionIoU(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.probes[i & 255].IoU(f.probes[(i + 1) & 255]));
    ++i;
  }
}
BENCHMARK(BM_RegionIoU);

void BM_GsoIteration(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  ObjectiveConfig oconfig;
  oconfig.threshold = 1000.0;
  const RegionObjective objective(f.surrogate.AsStatisticFn(),
                                  f.surrogate.AsBatchStatisticFn(), oconfig);
  GsoParams params;
  params.num_glowworms = static_cast<size_t>(state.range(0));
  params.max_iterations = 1;
  params.convergence_tol_frac = 0.0;
  const GlowwormSwarmOptimizer gso(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gso.Optimize(objective.AsBatchFitnessFn(), f.space));
  }
}
BENCHMARK(BM_GsoIteration)->Arg(50)->Arg(100)->Arg(200);

void BM_GbrtTraining(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  WorkloadParams wparams;
  wparams.num_queries = static_cast<size_t>(state.range(0));
  const RegionWorkload workload = GenerateWorkload(
      *f.grid, f.ds.data.ComputeBounds(f.ds.region_cols), wparams);
  GbrtParams params;
  params.n_estimators = 50;
  for (auto _ : state) {
    GradientBoostedTrees model(params);
    benchmark::DoNotOptimize(
        model.Fit(workload.features, workload.targets));
  }
}
BENCHMARK(BM_GbrtTraining)->Arg(1000)->Arg(4000)->Unit(
    benchmark::kMillisecond);

void BM_GbrtPredictBatch(benchmark::State& state) {
  MicroFixture& f = MicroFixture::Get();
  Rng rng(6);
  FeatureMatrix probes(2 * f.space.dims());
  const size_t n = static_cast<size_t>(state.range(0));
  probes.Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    probes.AddRow(RegionFeatures(f.space.Sample(&rng)));
  }
  const auto* model =
      dynamic_cast<const GradientBoostedTrees*>(&f.surrogate.model());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->PredictBatch(probes));
  }
}
BENCHMARK(BM_GbrtPredictBatch)->Arg(1024)->Arg(16384)->Unit(
    benchmark::kMillisecond);

// ===================================================================
// GBRT engine speedup report (BENCH_gbrt.json)
// ===================================================================

constexpr size_t kReportThreads = 8;

// Training comparison shape.
constexpr size_t kTrainRows = 100000;
constexpr size_t kTrainFeatures = 6;
constexpr size_t kTrainTrees = 100;
constexpr size_t kTrainDepth = 8;

// Prediction comparison shape (big ensemble: the blocked traversal's
// cache behaviour is the whole story).
constexpr size_t kPredictTrees = 300;
constexpr size_t kPredictDepth = 9;
constexpr size_t kPredictRows = 30000;

double BenchTargetFn(const std::vector<double>& x) {
  double out = std::sin(6.0 * x[0]) + 0.7 * x[1] * x[1];
  for (size_t j = 2; j < x.size(); ++j) {
    out += 0.3 * std::cos(3.0 * x[j]) * x[(j - 1) % x.size()];
  }
  return out;
}

void MakeBenchProblem(size_t rows, size_t features, uint64_t seed,
                      FeatureMatrix* x, std::vector<double>* y) {
  Rng rng(seed);
  *x = FeatureMatrix(features);
  x->Reserve(rows);
  y->clear();
  y->reserve(rows);
  std::vector<double> row(features);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < features; ++j) row[j] = rng.Uniform();
    x->AddRow(row);
    y->push_back(BenchTargetFn(row) + 0.05 * rng.Gaussian());
  }
}

template <typename Fn>
double BestOfSeconds(size_t reps, const Fn& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < reps; ++i) {
    Stopwatch timer;
    fn();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

struct SpeedupReport {
  double train_baseline_ms = 0.0;
  double train_engine_1t_ms = 0.0;
  double train_engine_mt_ms = 0.0;
  double predict_baseline_ms = 0.0;
  double predict_engine_1t_ms = 0.0;
  double predict_engine_mt_ms = 0.0;
  bool deterministic_across_threads = false;
  double predict_max_abs_diff_vs_baseline = 0.0;
};

GbrtParams EngineParams(size_t trees, size_t depth, size_t threads) {
  GbrtParams params;
  params.n_estimators = trees;
  params.max_depth = depth;
  params.num_threads = threads;
  params.seed = 11;
  return params;
}

SpeedupReport RunSpeedupReport() {
  SpeedupReport report;

  // ---- training ----
  FeatureMatrix train_x;
  std::vector<double> train_y;
  MakeBenchProblem(kTrainRows, kTrainFeatures, 91, &train_x, &train_y);

  report.train_baseline_ms = 1e3 * BestOfSeconds(2, [&] {
    bench::LegacyGbrt legacy;
    legacy.n_estimators = kTrainTrees;
    legacy.tree_params.max_depth = kTrainDepth;
    legacy.Fit(train_x, train_y);
    if (legacy.num_trees() != kTrainTrees) std::abort();
  });
  report.train_engine_1t_ms = 1e3 * BestOfSeconds(2, [&] {
    GradientBoostedTrees model(EngineParams(kTrainTrees, kTrainDepth, 1));
    if (!model.Fit(train_x, train_y).ok()) std::abort();
  });
  report.train_engine_mt_ms = 1e3 * BestOfSeconds(2, [&] {
    GradientBoostedTrees model(
        EngineParams(kTrainTrees, kTrainDepth, kReportThreads));
    if (!model.Fit(train_x, train_y).ok()) std::abort();
  });

  // Determinism: identical predictions for any thread count.
  {
    GradientBoostedTrees one(EngineParams(kTrainTrees, kTrainDepth, 1));
    GradientBoostedTrees many(
        EngineParams(kTrainTrees, kTrainDepth, kReportThreads));
    if (!one.Fit(train_x, train_y).ok()) std::abort();
    if (!many.Fit(train_x, train_y).ok()) std::abort();
    const std::vector<double> pa = one.PredictBatch(train_x);
    const std::vector<double> pb = many.PredictBatch(train_x);
    report.deterministic_across_threads = pa == pb;
  }

  // ---- batch prediction ----
  // One big ensemble, walked by both engines: the legacy predictor loads
  // the library model's serialized trees so the comparison is over the
  // identical ensemble.
  GradientBoostedTrees model(
      EngineParams(kPredictTrees, kPredictDepth, kReportThreads));
  if (!model.Fit(train_x, train_y).ok()) std::abort();

  bench::LegacyGbrt legacy_model;
  {
    const std::string tmp = "/tmp/surf_bench_gbrt.model";
    if (!model.Save(tmp).ok()) std::abort();
    std::ifstream is(tmp);
    std::string magic;
    size_t num_features = 0, n_trees = 0;
    double base_score = 0.0, lr = 0.0;
    is >> magic >> num_features >> base_score >> lr >> n_trees;
    legacy_model.LoadTrees(is, n_trees, base_score, lr, num_features);
    std::remove(tmp.c_str());
  }

  FeatureMatrix probe_x;
  std::vector<double> probe_y;
  MakeBenchProblem(kPredictRows, kTrainFeatures, 92, &probe_x, &probe_y);

  std::vector<double> legacy_out, engine_out_1t, engine_out_mt;
  report.predict_baseline_ms = 1e3 * BestOfSeconds(3, [&] {
    legacy_out = legacy_model.PredictBatch(probe_x);
  });
  model.set_num_threads(1);
  report.predict_engine_1t_ms = 1e3 * BestOfSeconds(3, [&] {
    engine_out_1t = model.PredictBatch(probe_x);
  });
  model.set_num_threads(kReportThreads);
  report.predict_engine_mt_ms = 1e3 * BestOfSeconds(3, [&] {
    engine_out_mt = model.PredictBatch(probe_x);
  });

  if (engine_out_1t != engine_out_mt) {
    report.deterministic_across_threads = false;
  }
  for (size_t r = 0; r < legacy_out.size(); ++r) {
    report.predict_max_abs_diff_vs_baseline =
        std::max(report.predict_max_abs_diff_vs_baseline,
                 std::fabs(legacy_out[r] - engine_out_1t[r]));
  }
  return report;
}

// ===================================================================
// Accel kernel-level speedup section (the "accel" object in the JSON)
// ===================================================================

constexpr size_t kKernelRows = 1u << 21;  // 2M rows per kernel rep
constexpr uint32_t kKernelBins = 64;

struct AccelKernelTimes {
  std::string backend;
  double mask_range_ms = 0.0;
  double mask_count_ms = 0.0;
  double hist_ms = 0.0;
};

struct AccelReport {
  AccelSelection selection;
  double legacy_mask_range_ms = 0.0;
  double legacy_mask_count_ms = 0.0;
  double legacy_hist_ms = 0.0;
  std::vector<AccelKernelTimes> backends;
};

AccelReport RunAccelKernelReport() {
  AccelReport report;
  report.selection = CurrentAccelSelection();

  Rng rng(93);
  std::vector<double> col(kKernelRows);
  std::vector<uint8_t> mask(kKernelRows, 1), scratch_mask(kKernelRows);
  std::vector<uint8_t> bins(kKernelRows);
  std::vector<double> grad(kKernelRows);
  for (size_t i = 0; i < kKernelRows; ++i) {
    col[i] = rng.Uniform(-10.0, 10.0);
    bins[i] = static_cast<uint8_t>(
        static_cast<uint32_t>(rng.Uniform() * kKernelBins) % kKernelBins);
    grad[i] = rng.Uniform(-1.0, 1.0);
  }
  std::vector<double> g(kKernelBins);
  std::vector<uint32_t> cnt(kKernelBins);
  uint64_t sink = 0;

  report.legacy_mask_range_ms = 1e3 * BestOfSeconds(5, [&] {
    std::copy(mask.begin(), mask.end(), scratch_mask.begin());
    bench::LegacyMaskScan(col.data(), kKernelRows, -3.0, 3.0,
                          scratch_mask.data());
  });
  report.legacy_mask_count_ms = 1e3 * BestOfSeconds(5, [&] {
    sink += bench::LegacyMaskCount(scratch_mask.data(), kKernelRows);
  });
  report.legacy_hist_ms = 1e3 * BestOfSeconds(5, [&] {
    std::fill(g.begin(), g.end(), 0.0);
    std::fill(cnt.begin(), cnt.end(), 0u);
    bench::LegacyHistU8Unit(bins.data(), nullptr, grad.data(), kKernelRows,
                            g.data(), cnt.data());
  });

  for (int b = 0; b < kNumAccelBackends; ++b) {
    const AccelBackend backend = static_cast<AccelBackend>(b);
    if (!AccelSupported(backend)) continue;
    const AccelOps& ops = AccelOpsFor(backend);
    AccelKernelTimes times;
    times.backend = ops.name;
    times.mask_range_ms = 1e3 * BestOfSeconds(5, [&] {
      std::copy(mask.begin(), mask.end(), scratch_mask.begin());
      ops.mask_range_and(col.data(), kKernelRows, -3.0, 3.0,
                         scratch_mask.data());
    });
    times.mask_count_ms = 1e3 * BestOfSeconds(5, [&] {
      sink += ops.mask_count(scratch_mask.data(), kKernelRows);
    });
    times.hist_ms = 1e3 * BestOfSeconds(5, [&] {
      std::fill(g.begin(), g.end(), 0.0);
      std::fill(cnt.begin(), cnt.end(), 0u);
      ops.hist_u8_unit(bins.data(), nullptr, grad.data(), kKernelRows,
                       kKernelBins, g.data(), cnt.data());
    });
    report.backends.push_back(times);
  }
  if (sink == 0xdeadbeef) std::printf("\n");  // keep `sink` observable
  return report;
}

// ===================================================================
// Disabled-tracing overhead gate (the "trace_overhead" object)
// ===================================================================

// The disabled-mode cost contract: a TraceSpan with a null context is
// one branch in and one branch out, so instrumenting a hot loop at
// span-per-call granularity must stay within 2% of the uninstrumented
// loop. Span-per-call is far finer than any real site (the pipeline
// spans whole stages and batches), which makes this a sensitive canary:
// a regression that sneaks an allocation, a lock, or attr formatting
// into the disabled path fails the gate by an order of magnitude.
constexpr double kTraceOverheadMaxRatio = 1.02;
constexpr size_t kTraceOverheadIters = 50000;
constexpr size_t kTraceOverheadReps = 9;

struct TraceOverheadReport {
  double baseline_ms = 0.0;
  double disabled_ms = 0.0;
  double ratio = 0.0;
};

TraceOverheadReport RunTraceOverheadReport() {
  MicroFixture& f = MicroFixture::Get();
  TraceContext* const no_trace = nullptr;
  double sink = 0.0;

  const auto plain_rep = [&] {
    double acc = 0.0;
    size_t i = 0;
    for (size_t it = 0; it < kTraceOverheadIters; ++it) {
      acc += f.surrogate.Predict(f.probes[i++ & 255]);
    }
    sink += acc;
  };
  const auto traced_rep = [&] {
    double acc = 0.0;
    size_t i = 0;
    for (size_t it = 0; it < kTraceOverheadIters; ++it) {
      TraceSpan span(no_trace, "predict", TraceStage::kSearch);
      acc += f.surrogate.Predict(f.probes[i++ & 255]);
      span.Attr("iter", static_cast<uint64_t>(it));
      span.Attr("value", acc);
    }
    sink += acc;
  };

  // Interleave the paired reps so clock drift and thermal state hit
  // both sides equally; min-of-reps drops the (one-sided) noise.
  TraceOverheadReport report;
  double best_plain = std::numeric_limits<double>::infinity();
  double best_traced = std::numeric_limits<double>::infinity();
  plain_rep();   // warm caches before the first timed rep
  traced_rep();
  for (size_t rep = 0; rep < kTraceOverheadReps; ++rep) {
    {
      Stopwatch timer;
      plain_rep();
      best_plain = std::min(best_plain, timer.ElapsedSeconds());
    }
    {
      Stopwatch timer;
      traced_rep();
      best_traced = std::min(best_traced, timer.ElapsedSeconds());
    }
  }
  if (sink == 0.5) std::printf("\n");  // keep `sink` observable
  report.baseline_ms = 1e3 * best_plain;
  report.disabled_ms = 1e3 * best_traced;
  report.ratio = report.disabled_ms / report.baseline_ms;
  return report;
}

void WriteReportJson(const SpeedupReport& report, const AccelReport& accel,
                     const TraceOverheadReport& trace,
                     const std::string& path) {
  std::ofstream os(path);
  os.precision(6);
  os << "{\n";
  os << "  \"threads\": " << kReportThreads << ",\n";
  os << "  \"accel_backend\": \""
     << AccelBackendName(accel.selection.active) << "\",\n";
  os << "  \"accel\": {\n";
  os << "    \"rows\": " << kKernelRows << ",\n";
  os << "    \"hist_bins\": " << kKernelBins << ",\n";
  os << "    \"legacy\": { \"mask_range_ms\": " << accel.legacy_mask_range_ms
     << ", \"mask_count_ms\": " << accel.legacy_mask_count_ms
     << ", \"hist_ms\": " << accel.legacy_hist_ms << " },\n";
  os << "    \"backends\": [\n";
  for (size_t i = 0; i < accel.backends.size(); ++i) {
    const AccelKernelTimes& t = accel.backends[i];
    os << "      { \"name\": \"" << t.backend
       << "\", \"mask_range_ms\": " << t.mask_range_ms
       << ", \"mask_count_ms\": " << t.mask_count_ms
       << ", \"hist_ms\": " << t.hist_ms
       << ", \"mask_range_speedup_vs_legacy\": "
       << accel.legacy_mask_range_ms / t.mask_range_ms
       << ", \"mask_count_speedup_vs_legacy\": "
       << accel.legacy_mask_count_ms / t.mask_count_ms
       << ", \"hist_speedup_vs_legacy\": "
       << accel.legacy_hist_ms / t.hist_ms << " }"
       << (i + 1 < accel.backends.size() ? "," : "") << "\n";
  }
  os << "    ]\n";
  os << "  },\n";
  os << "  \"train\": {\n";
  os << "    \"rows\": " << kTrainRows << ",\n";
  os << "    \"features\": " << kTrainFeatures << ",\n";
  os << "    \"trees\": " << kTrainTrees << ",\n";
  os << "    \"max_depth\": " << kTrainDepth << ",\n";
  os << "    \"baseline_1t_ms\": " << report.train_baseline_ms << ",\n";
  os << "    \"engine_1t_ms\": " << report.train_engine_1t_ms << ",\n";
  os << "    \"engine_" << kReportThreads
     << "t_ms\": " << report.train_engine_mt_ms << ",\n";
  os << "    \"speedup_1t\": "
     << report.train_baseline_ms / report.train_engine_1t_ms << ",\n";
  os << "    \"speedup_" << kReportThreads << "t\": "
     << report.train_baseline_ms / report.train_engine_mt_ms << "\n";
  os << "  },\n";
  os << "  \"trace_overhead\": {\n";
  os << "    \"iterations\": " << kTraceOverheadIters << ",\n";
  os << "    \"baseline_ms\": " << trace.baseline_ms << ",\n";
  os << "    \"disabled_tracing_ms\": " << trace.disabled_ms << ",\n";
  os << "    \"ratio\": " << trace.ratio << ",\n";
  os << "    \"max_ratio\": " << kTraceOverheadMaxRatio << "\n";
  os << "  },\n";
  os << "  \"predict\": {\n";
  os << "    \"rows\": " << kPredictRows << ",\n";
  os << "    \"features\": " << kTrainFeatures << ",\n";
  os << "    \"trees\": " << kPredictTrees << ",\n";
  os << "    \"max_depth\": " << kPredictDepth << ",\n";
  os << "    \"baseline_1t_ms\": " << report.predict_baseline_ms << ",\n";
  os << "    \"engine_1t_ms\": " << report.predict_engine_1t_ms << ",\n";
  os << "    \"engine_" << kReportThreads
     << "t_ms\": " << report.predict_engine_mt_ms << ",\n";
  os << "    \"speedup_1t\": "
     << report.predict_baseline_ms / report.predict_engine_1t_ms << ",\n";
  os << "    \"speedup_" << kReportThreads << "t\": "
     << report.predict_baseline_ms / report.predict_engine_mt_ms << ",\n";
  os << "    \"max_abs_diff_vs_baseline\": "
     << report.predict_max_abs_diff_vs_baseline << "\n";
  os << "  },\n";
  os << "  \"bit_identical_across_thread_counts\": "
     << (report.deterministic_across_threads ? "true" : "false") << "\n";
  os << "}\n";
}

}  // namespace
}  // namespace surf

int main(int argc, char** argv) {
  bool speedup_only = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--speedup-only") {
      speedup_only = true;
    } else {
      args.push_back(argv[i]);
    }
  }

  const char* json_env = std::getenv("SURF_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_gbrt.json";

  // Accel backend selection — reported up front, and a hard error when a
  // SURF_ACCEL override asked for a backend this host cannot deliver
  // (silently benchmarking the wrong kernels would poison the numbers).
  const surf::AccelSelection selection = surf::CurrentAccelSelection();
  std::printf("accel backend: %s%s\n",
              surf::AccelBackendName(selection.active),
              selection.override_requested ? " (SURF_ACCEL override)" : "");
  if (selection.override_requested && !selection.override_honored) {
    std::fprintf(stderr,
                 "error: SURF_ACCEL=%s requested but unavailable on this "
                 "host/build\n",
                 selection.requested.c_str());
    return 1;
  }

  std::printf("== accel kernel speedups (vs legacy scalar loops, %zu "
              "rows) ==\n",
              surf::kKernelRows);
  const surf::AccelReport accel = surf::RunAccelKernelReport();
  std::printf("legacy  : mask_range %.2f ms | mask_count %.2f ms | "
              "hist %.2f ms\n",
              accel.legacy_mask_range_ms, accel.legacy_mask_count_ms,
              accel.legacy_hist_ms);
  for (const surf::AccelKernelTimes& t : accel.backends) {
    std::printf("%-8s: mask_range %.2f ms (%.2fx) | mask_count %.2f ms "
                "(%.2fx) | hist %.2f ms (%.2fx)\n",
                t.backend.c_str(), t.mask_range_ms,
                accel.legacy_mask_range_ms / t.mask_range_ms,
                t.mask_count_ms,
                accel.legacy_mask_count_ms / t.mask_count_ms, t.hist_ms,
                accel.legacy_hist_ms / t.hist_ms);
  }

  std::printf("\n== GBRT engine speedup report (vs legacy single-thread "
              "baseline) ==\n");
  const surf::SpeedupReport report = surf::RunSpeedupReport();
  std::printf("train   : baseline %.1f ms | engine 1t %.1f ms (%.2fx) | "
              "engine %zut %.1f ms (%.2fx)\n",
              report.train_baseline_ms, report.train_engine_1t_ms,
              report.train_baseline_ms / report.train_engine_1t_ms,
              surf::kReportThreads, report.train_engine_mt_ms,
              report.train_baseline_ms / report.train_engine_mt_ms);
  std::printf("predict : baseline %.1f ms | engine 1t %.1f ms (%.2fx) | "
              "engine %zut %.1f ms (%.2fx)\n",
              report.predict_baseline_ms, report.predict_engine_1t_ms,
              report.predict_baseline_ms / report.predict_engine_1t_ms,
              surf::kReportThreads, report.predict_engine_mt_ms,
              report.predict_baseline_ms / report.predict_engine_mt_ms);
  std::printf("bit-identical across thread counts: %s | max |Δ| vs "
              "baseline: %.3g\n",
              report.deterministic_across_threads ? "yes" : "NO",
              report.predict_max_abs_diff_vs_baseline);

  std::printf("\n== disabled-tracing overhead gate (span per call) ==\n");
  const surf::TraceOverheadReport trace = surf::RunTraceOverheadReport();
  std::printf("plain %.2f ms | instrumented %.2f ms | ratio %.4f "
              "(max %.2f)\n",
              trace.baseline_ms, trace.disabled_ms, trace.ratio,
              surf::kTraceOverheadMaxRatio);

  surf::WriteReportJson(report, accel, trace, json_path);
  std::printf("wrote %s\n\n", json_path.c_str());
  if (trace.ratio > surf::kTraceOverheadMaxRatio) {
    std::fprintf(stderr,
                 "error: disabled tracing costs %.2f%% on a span-per-call "
                 "hot loop (budget %.0f%%) — the null-context TraceSpan "
                 "path must stay branch-only\n",
                 100.0 * (trace.ratio - 1.0),
                 100.0 * (surf::kTraceOverheadMaxRatio - 1.0));
    return 1;
  }
  if (speedup_only) return 0;

  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
