#include "util/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "util/string_util.h"

namespace surf {

std::atomic<int> FailpointRegistry::active_count_{0};

namespace {

/// FNV-1a, so a site name contributes a stable stream offset.
uint64_t HashName(const std::string& name) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : name) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// splitmix64: one decision per (seed, site, hit-index) tuple, so the
/// fire sequence of a site is reproducible under a seed regardless of
/// what other sites are doing.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double UnitDraw(uint64_t seed, uint64_t site_hash, uint64_t index) {
  const uint64_t bits = Mix(seed ^ Mix(site_hash + index));
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

StatusOr<FailpointSpec> ParseAction(const std::string& action) {
  FailpointSpec spec;
  spec.raw = action;
  if (action == "error") {
    spec.kind = FailpointSpec::Kind::kError;
    spec.probability = 1.0;
    return spec;
  }
  const size_t colon = action.find(':');
  const std::string head =
      colon == std::string::npos ? action : action.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : action.substr(colon + 1);
  char* end = nullptr;
  if (head == "prob") {
    const double p = std::strtod(arg.c_str(), &end);
    if (arg.empty() || end == nullptr || *end != '\0' || !(p >= 0.0) ||
        p > 1.0) {
      return Status::InvalidArgument("failpoint prob needs p in [0,1], got '" +
                                     arg + "'");
    }
    spec.kind = FailpointSpec::Kind::kError;
    spec.probability = p;
    return spec;
  }
  if (head == "delay") {
    const double ms = std::strtod(arg.c_str(), &end);
    if (arg.empty() || end == nullptr || *end != '\0' || !(ms >= 0.0)) {
      return Status::InvalidArgument(
          "failpoint delay needs non-negative ms, got '" + arg + "'");
    }
    spec.kind = FailpointSpec::Kind::kDelay;
    spec.delay_ms = ms;
    return spec;
  }
  return Status::InvalidArgument("unknown failpoint action '" + action +
                                 "' (want error | prob:p | delay:ms)");
}

}  // namespace

FailpointRegistry::FailpointRegistry() {
  if (const char* seed_env = std::getenv("SURF_FAILPOINTS_SEED")) {
    seed_ = std::strtoull(seed_env, nullptr, 10);
  }
  if (const char* spec_env = std::getenv("SURF_FAILPOINTS")) {
    // Environment arming is best-effort: a malformed spec must not
    // abort the process that merely inherited the variable.
    (void)Configure(spec_env);
  }
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

Status FailpointRegistry::Configure(const std::string& specs) {
  // Validate the whole list before arming any of it.
  std::vector<std::pair<std::string, FailpointSpec>> parsed;
  for (const std::string& raw : SplitString(specs, ',')) {
    const std::string entry = TrimString(raw);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("failpoint spec '" + entry +
                                     "' is not site=action");
    }
    auto spec = ParseAction(TrimString(entry.substr(eq + 1)));
    if (!spec.ok()) return spec.status();
    parsed.emplace_back(TrimString(entry.substr(0, eq)),
                        std::move(spec).value());
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [site, spec] : parsed) {
    auto [it, inserted] = armed_.try_emplace(site);
    if (inserted) active_count_.fetch_add(1, std::memory_order_relaxed);
    it->second = Armed{std::move(spec), 0, 0};
  }
  return Status::OK();
}

Status FailpointRegistry::Set(const std::string& site,
                              const std::string& action) {
  if (site.empty()) return Status::InvalidArgument("empty failpoint site");
  auto spec = ParseAction(action);
  if (!spec.ok()) return spec.status();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = armed_.try_emplace(site);
  if (inserted) active_count_.fetch_add(1, std::memory_order_relaxed);
  it->second = Armed{std::move(spec).value(), 0, 0};
  return Status::OK();
}

bool FailpointRegistry::Clear(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool erased = armed_.erase(site) > 0;
  if (erased) active_count_.fetch_sub(1, std::memory_order_relaxed);
  return erased;
}

void FailpointRegistry::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  active_count_.fetch_sub(static_cast<int>(armed_.size()),
                          std::memory_order_relaxed);
  armed_.clear();
}

void FailpointRegistry::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
  for (auto& [site, armed] : armed_) {
    armed.hits = 0;
    armed.fires = 0;
  }
}

uint64_t FailpointRegistry::seed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seed_;
}

std::vector<FailpointRegistry::Info> FailpointRegistry::List() const {
  std::vector<Info> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(armed_.size());
    for (const auto& [site, armed] : armed_) {
      out.push_back(Info{site, armed.spec.raw, armed.hits, armed.fires});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Info& a, const Info& b) { return a.site < b.site; });
  return out;
}

const std::vector<std::string>& FailpointRegistry::KnownSites() {
  // The catalogue of sites compiled into the library; keep in sync with
  // the SURF_FAILPOINT/MaybeFailpoint call sites (chaos_test drives and
  // asserts coverage of every entry).
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "data.load_csv",   // Dataset::LoadCsv
      "serve.train",     // MiningService::TrainEntry
      "cache.insert",    // SurrogateCache publish path
      "shard.evaluate",  // ShardedScanEvaluator::EvaluateImpl
      "net.write",       // HttpServer response send path
      "dist.shard_rpc",  // ClusterEvaluator worker RPC (re-home path)
  };
  return *sites;
}

Status FailpointRegistry::Hit(const char* site) {
  double sleep_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = armed_.find(site);
    if (it == armed_.end()) return Status::OK();
    Armed& armed = it->second;
    const uint64_t index = armed.hits++;
    switch (armed.spec.kind) {
      case FailpointSpec::Kind::kError: {
        const bool fire =
            armed.spec.probability >= 1.0 ||
            UnitDraw(seed_, HashName(it->first), index) <
                armed.spec.probability;
        if (!fire) return Status::OK();
        ++armed.fires;
        return Status::Internal(std::string("failpoint '") + site +
                                "' fired");
      }
      case FailpointSpec::Kind::kDelay:
        ++armed.fires;
        sleep_ms = armed.spec.delay_ms;
        break;
    }
  }
  // Sleep outside the lock so a delayed site never serializes the
  // registry for other threads.
  if (sleep_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        sleep_ms));
  }
  return Status::OK();
}

}  // namespace surf
