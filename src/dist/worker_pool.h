#ifndef SURF_DIST_WORKER_POOL_H_
#define SURF_DIST_WORKER_POOL_H_

/// \file
/// \brief The coordinator's static member list of remote surfd workers.
///
/// A WorkerPool is configured once (`--workers host:port,...`) and holds
/// per-worker health plus request-latency telemetry. Health is
/// optimistic: every worker starts healthy, an RPC failure marks it
/// unhealthy (MarkUnhealthy, called by the scatter path right before it
/// re-homes the shard group), and ProbeUnhealthy gives marked workers a
/// `GET /healthz` chance to rejoin at the start of each scatter — so a
/// restarted worker is picked up without coordinator intervention.
/// All counters are atomics; the pool is safe to use from concurrent
/// scatter threads and the /metrics renderer simultaneously.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/cancel.h"
#include "util/status.h"

namespace surf {
namespace dist {

/// Upper bounds (seconds) of the per-worker RPC latency histogram —
/// identical to ServerMetrics::kLatencyBucketsSeconds so the
/// surf_dist_worker_request_seconds exposition shares bucket boundaries
/// with the server-side histograms (implicit final bucket: +Inf).
inline constexpr std::array<double, 14> kWorkerLatencyBucketBounds = {
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1,    0.25,  0.5,    1.0,   2.5,  5.0,   10.0};

/// \brief Static worker membership + health + latency telemetry.
class WorkerPool {
 public:
  /// \brief Telemetry snapshot of one worker, for /metrics.
  struct WorkerFigures {
    std::string endpoint;
    bool healthy = true;
    /// Raw (non-cumulative) bucket counts; last slot = +Inf.
    std::array<uint64_t, kWorkerLatencyBucketBounds.size() + 1> buckets{};
    double latency_sum_seconds = 0.0;
    uint64_t latency_count = 0;
  };

  /// \brief Pool-level telemetry snapshot.
  struct Figures {
    uint64_t shard_retries = 0;
    std::vector<WorkerFigures> workers;
  };

  /// Builds the member list from "host:port" endpoints. Malformed
  /// endpoints are recorded and surfaced via `status()` (the pool is
  /// still constructed so the caller can report the error cleanly).
  explicit WorkerPool(const std::vector<std::string>& endpoints,
                      double rpc_timeout_seconds = 300.0);

  /// OK unless an endpoint failed to parse at construction.
  const Status& status() const { return status_; }

  size_t size() const { return workers_.size(); }
  const std::string& endpoint(size_t i) const { return workers_[i]->endpoint; }
  bool healthy(size_t i) const {
    return workers_[i]->healthy.load(std::memory_order_relaxed);
  }

  /// Marks worker `i` unhealthy (its RPC failed); ProbeUnhealthy may
  /// readmit it later.
  void MarkUnhealthy(size_t i) {
    workers_[i]->healthy.store(false, std::memory_order_relaxed);
  }

  /// Probes every *unhealthy* worker with `GET /healthz` (short
  /// timeout), readmitting responders. Healthy workers are not touched —
  /// the steady-state scatter pays zero probe RPCs. Returns the healthy
  /// count afterwards.
  size_t ProbeUnhealthy(const CancelToken& cancel);

  /// Indices of currently healthy workers, ascending.
  std::vector<size_t> HealthyWorkers() const;

  /// One POST against worker `i`, recording latency on success and
  /// marking the worker unhealthy on transport failure. Transport
  /// failures come back as their IOError/TimedOut/Cancelled selves; an
  /// HTTP error answer maps onto the library code space (5xx →
  /// Internal, 404 → NotFound, 412 → FailedPrecondition, 408 →
  /// TimedOut, other 4xx → InvalidArgument) so IsRetriableStatus can
  /// separate "retry elsewhere" from "the request itself is wrong".
  StatusOr<std::string> Post(size_t i, const std::string& target,
                             const std::string& body,
                             const CancelToken& cancel);

  /// Counts one shard-group re-home (exported as
  /// surf_dist_shard_retries_total).
  void RecordRetry() {
    shard_retries_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t shard_retries() const {
    return shard_retries_.load(std::memory_order_relaxed);
  }

  /// Telemetry snapshot for the /metrics exporter.
  Figures Snapshot() const;

 private:
  /// Stable-address per-worker state (atomics must not move).
  struct Worker {
    std::string endpoint;
    std::string host;
    uint16_t port = 0;
    std::atomic<bool> healthy{true};
    std::array<std::atomic<uint64_t>,
               kWorkerLatencyBucketBounds.size() + 1>
        buckets{};
    std::atomic<uint64_t> latency_sum_ns{0};
    std::atomic<uint64_t> latency_count{0};
  };

  void RecordLatency(Worker* worker, double seconds);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<uint64_t> shard_retries_{0};
  double rpc_timeout_seconds_;
  Status status_ = Status::OK();
};

}  // namespace dist
}  // namespace surf

#endif  // SURF_DIST_WORKER_POOL_H_
