#include "util/trace.h"

#include <algorithm>
#include <cstdio>

namespace surf {

namespace {

std::atomic<uint64_t> g_next_trace_id{1};
std::atomic<uint32_t> g_next_thread_index{0};

uint32_t AssignThreadIndex() {
  thread_local const uint32_t index =
      g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace

const char* TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kNone:
      return "";
    case TraceStage::kWorkloadGen:
      return "workload_gen";
    case TraceStage::kLabelling:
      return "labelling";
    case TraceStage::kTraining:
      return "training";
    case TraceStage::kSearch:
      return "search";
    case TraceStage::kExtraction:
      return "extraction";
  }
  return "";
}

uint32_t CurrentThreadIndex() { return AssignThreadIndex(); }

// ------------------------------------------------------------ TraceContext

TraceContext::TraceContext()
    : id_("trace-" + std::to_string(
                         g_next_trace_id.fetch_add(1,
                                                   std::memory_order_relaxed))),
      epoch_(std::chrono::steady_clock::now()) {}

uint64_t TraceContext::ElapsedNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

int32_t TraceContext::BeginSpan(const char* name, TraceStage stage) {
  const internal::TraceCursor& cursor = internal::CurrentTraceCursor();
  return BeginSpan(name, stage, cursor.ctx == this ? cursor.span : -1);
}

int32_t TraceContext::BeginSpan(const char* name, TraceStage stage,
                                int32_t parent) {
  const uint64_t start = ElapsedNs();
  const uint32_t tid = AssignThreadIndex();
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return -1;
  }
  Span span;
  span.name = name;
  span.parent =
      (parent >= 0 && static_cast<size_t>(parent) < spans_.size()) ? parent
                                                                   : -1;
  span.stage = stage;
  span.start_ns = start;
  span.tid = tid;
  spans_.push_back(std::move(span));
  return static_cast<int32_t>(spans_.size() - 1);
}

void TraceContext::EndSpan(int32_t index) {
  if (index < 0) return;
  const uint64_t now = ElapsedNs();
  TraceStage stage = TraceStage::kNone;
  uint64_t dur = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (static_cast<size_t>(index) >= spans_.size()) return;
    Span& span = spans_[static_cast<size_t>(index)];
    if (span.dur_ns != 0) return;  // already closed
    dur = now > span.start_ns ? now - span.start_ns : 1;
    span.dur_ns = dur;
    stage = span.stage;
  }
  if (stage != TraceStage::kNone) StageStats::Instance().Record(stage, dur);
}

void TraceContext::AddAttr(int32_t index, const char* key,
                           std::string value) {
  if (index < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<size_t>(index) >= spans_.size()) return;
  spans_[static_cast<size_t>(index)].attrs.emplace_back(key,
                                                        std::move(value));
}

std::vector<TraceContext::Span> TraceContext::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

uint64_t TraceContext::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::array<double, kNumTraceStages> TraceContext::StageSeconds() const {
  std::array<double, kNumTraceStages> out{};
  std::lock_guard<std::mutex> lock(mu_);
  for (const Span& span : spans_) {
    if (span.stage == TraceStage::kNone || span.dur_ns == 0) continue;
    out[static_cast<int>(span.stage)] +=
        static_cast<double>(span.dur_ns) * 1e-9;
  }
  return out;
}

// --------------------------------------------------------------- TraceSpan

namespace internal {

TraceCursor& CurrentTraceCursor() {
  thread_local TraceCursor cursor;
  return cursor;
}

}  // namespace internal

const std::string* CurrentTraceId() {
  const internal::TraceCursor& cursor = internal::CurrentTraceCursor();
  return cursor.ctx == nullptr ? nullptr : &cursor.ctx->id();
}

void TraceSpan::Open(TraceContext* ctx, const char* name, TraceStage stage,
                     bool use_cursor_parent, int32_t parent) {
  ctx_ = ctx;
  internal::TraceCursor& cursor = internal::CurrentTraceCursor();
  if (use_cursor_parent) {
    parent = cursor.ctx == ctx ? cursor.span : -1;
  }
  span_ = ctx->BeginSpan(name, stage, parent);
  // Install as the thread's innermost span even when the span itself was
  // dropped by the cap — children then chain to this span's parent.
  saved_ = cursor;
  cursor.ctx = ctx;
  cursor.span = span_ >= 0 ? span_ : parent;
  installed_ = true;
}

void TraceSpan::Close() {
  ctx_->EndSpan(span_);
  if (installed_) internal::CurrentTraceCursor() = saved_;
}

void TraceSpan::Attr(const char* key, uint64_t value) {
  if (ctx_ != nullptr) ctx_->AddAttr(span_, key, std::to_string(value));
}

void TraceSpan::Attr(const char* key, double value) {
  if (ctx_ == nullptr) return;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  ctx_->AddAttr(span_, key, buf);
}

// --------------------------------------------------------------- StageStats

StageStats& StageStats::Instance() {
  static StageStats* instance = new StageStats();  // never destroyed
  return *instance;
}

void StageStats::Record(TraceStage stage, uint64_t dur_ns) {
  const int s = static_cast<int>(stage);
  if (s <= 0 || s >= kNumTraceStages) return;
  PerStage& per = stages_[static_cast<size_t>(s)];
  const double seconds = static_cast<double>(dur_ns) * 1e-9;
  size_t bucket = kBucketBoundsSeconds.size();  // +Inf slot
  for (size_t i = 0; i < kBucketBoundsSeconds.size(); ++i) {
    if (seconds <= kBucketBoundsSeconds[i]) {
      bucket = i;
      break;
    }
  }
  per.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  per.count.fetch_add(1, std::memory_order_relaxed);
  per.sum_ns.fetch_add(dur_ns, std::memory_order_relaxed);
}

StageStats::Snapshot StageStats::Get(TraceStage stage) const {
  Snapshot out;
  const int s = static_cast<int>(stage);
  if (s <= 0 || s >= kNumTraceStages) return out;
  const PerStage& per = stages_[static_cast<size_t>(s)];
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out.buckets[i] = per.buckets[i].load(std::memory_order_relaxed);
  }
  out.count = per.count.load(std::memory_order_relaxed);
  out.sum_seconds =
      static_cast<double>(per.sum_ns.load(std::memory_order_relaxed)) * 1e-9;
  return out;
}

void StageStats::Reset() {
  for (PerStage& per : stages_) {
    for (auto& bucket : per.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    per.count.store(0, std::memory_order_relaxed);
    per.sum_ns.store(0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------- TraceRing

void TraceRing::Add(std::shared_ptr<const TraceContext> trace) {
  if (trace == nullptr || capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  traces_.push_back(std::move(trace));
  if (traces_.size() > capacity_) {
    traces_.erase(traces_.begin(),
                  traces_.begin() +
                      static_cast<long>(traces_.size() - capacity_));
  }
}

std::shared_ptr<const TraceContext> TraceRing::Find(
    const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& trace : traces_) {
    if (trace->id() == id) return trace;
  }
  return nullptr;
}

size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_.size();
}

}  // namespace surf
