#include "ml/binning.h"

#include <algorithm>
#include <cassert>

namespace surf {

namespace {

/// Edge computation sorts a bounded, deterministic stride-sample of each
/// column instead of all rows — the usual quantile-sketch compromise
/// (XGBoost's `hist`): at 64 samples per candidate bin the edges are
/// statistically indistinguishable while the O(n log n) per-feature sort
/// stops growing with the dataset.
constexpr size_t kMaxQuantileSamplesPerBin = 64;

}  // namespace

FeatureBinner::FeatureBinner(const FeatureMatrix& x, size_t max_bins) {
  max_bins = std::clamp<size_t>(max_bins, 2, 4096);
  const size_t n = x.num_rows();
  const size_t max_samples = max_bins * kMaxQuantileSamplesPerBin;
  edges_.resize(x.num_features());
  for (size_t j = 0; j < x.num_features(); ++j) {
    std::vector<double> sorted;
    if (n > max_samples) {
      // Ceiling stride so the sample spans the whole column — a floor
      // stride would degenerate to a prefix and ignore the tail of
      // row-ordered data.
      const size_t stride = (n + max_samples - 1) / max_samples;
      sorted.reserve(n / stride + 1);
      for (size_t r = 0; r < n; r += stride) {
        sorted.push_back(x.feature(j)[r]);
      }
    } else {
      sorted = x.feature(j);
    }
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

    auto& edges = edges_[j];
    if (sorted.size() <= max_bins) {
      // Few distinct values: one bin per value, edges at midpoints.
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        edges.push_back(0.5 * (sorted[i] + sorted[i + 1]));
      }
    } else {
      // Quantile edges over the distinct values (a cheap but effective
      // stand-in for a weighted quantile sketch).
      for (size_t b = 1; b < max_bins; ++b) {
        const double pos = static_cast<double>(b) *
                           static_cast<double>(sorted.size() - 1) /
                           static_cast<double>(max_bins);
        const size_t i = static_cast<size_t>(pos);
        const double edge = 0.5 * (sorted[i] + sorted[std::min(
                                                   i + 1, sorted.size() - 1)]);
        if (edges.empty() || edge > edges.back()) edges.push_back(edge);
      }
    }
  }
  (void)n;
}

uint16_t FeatureBinner::BinIndex(size_t j, double v) const {
  // Branchless lower_bound (the ternary compiles to cmov): binning whole
  // matrices is hot enough that the data-dependent branch of the library
  // binary search shows up.
  const auto& edges = edges_[j];
  const double* base = edges.data();
  size_t len = edges.size();
  if (len == 0) return 0;
  while (len > 1) {
    const size_t half = len / 2;
    base = base[half - 1] < v ? base + half : base;
    len -= half;
  }
  const size_t idx =
      static_cast<size_t>(base - edges.data()) + (base[0] < v ? 1 : 0);
  return static_cast<uint16_t>(idx);
}

BinnedMatrix FeatureBinner::Bin(const FeatureMatrix& x) const {
  assert(x.num_features() == num_features());
  BinnedMatrix out;
  const size_t n = x.num_rows();
  const size_t f = x.num_features();
  out.num_rows_ = n;
  out.bins_.resize(n * f);
  out.offsets_.resize(f + 1);
  out.offsets_[0] = 0;
  bool fits8 = true;
  for (size_t j = 0; j < f; ++j) {
    out.offsets_[j + 1] =
        out.offsets_[j] + static_cast<uint32_t>(num_bins(j));
    if (num_bins(j) > 256) fits8 = false;
    uint16_t* col = out.bins_.data() + j * n;
    const double* raw = x.feature(j).data();
    // Inlined branchless lower_bound with the per-feature edge array
    // hoisted out of the row loop.
    const double* e = edges_[j].data();
    const size_t m = edges_[j].size();
    if (m == 0) {
      std::fill_n(col, n, uint16_t{0});
      continue;
    }
    for (size_t r = 0; r < n; ++r) {
      const double v = raw[r];
      const double* base = e;
      size_t len = m;
      while (len > 1) {
        const size_t half = len / 2;
        base = base[half - 1] < v ? base + half : base;
        len -= half;
      }
      col[r] = static_cast<uint16_t>((base - e) + (base[0] < v ? 1 : 0));
    }
  }
  if (fits8) {
    out.bins8_.resize(n * f);
    for (size_t i = 0; i < n * f; ++i) {
      out.bins8_[i] = static_cast<uint8_t>(out.bins_[i]);
    }
  }
  return out;
}

std::vector<std::vector<uint16_t>> FeatureBinner::BinMatrix(
    const FeatureMatrix& x) const {
  assert(x.num_features() == num_features());
  std::vector<std::vector<uint16_t>> out(x.num_features());
  for (size_t j = 0; j < x.num_features(); ++j) {
    out[j].resize(x.num_rows());
    const auto& col = x.feature(j);
    for (size_t r = 0; r < col.size(); ++r) {
      out[j][r] = BinIndex(j, col[r]);
    }
  }
  return out;
}

}  // namespace surf
