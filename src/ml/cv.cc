#include "ml/cv.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace surf {

std::vector<Fold> KFoldSplits(size_t n, size_t k, Rng* rng) {
  assert(k >= 2 && k <= n);
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  rng->Shuffle(&idx);

  std::vector<Fold> folds(k);
  // Fold f owns rows [f*n/k, (f+1)*n/k) of the shuffled permutation.
  for (size_t f = 0; f < k; ++f) {
    const size_t begin = f * n / k;
    const size_t end = (f + 1) * n / k;
    for (size_t i = 0; i < n; ++i) {
      if (i >= begin && i < end) {
        folds[f].test.push_back(idx[i]);
      } else {
        folds[f].train.push_back(idx[i]);
      }
    }
  }
  return folds;
}

Fold TrainTestSplit(size_t n, double test_fraction, Rng* rng) {
  assert(test_fraction > 0.0 && test_fraction < 1.0);
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  rng->Shuffle(&idx);
  const size_t n_test = std::max<size_t>(1, static_cast<size_t>(
                                                test_fraction *
                                                static_cast<double>(n)));
  Fold fold;
  fold.test.assign(idx.begin(), idx.begin() + static_cast<long>(n_test));
  fold.train.assign(idx.begin() + static_cast<long>(n_test), idx.end());
  return fold;
}

}  // namespace surf
