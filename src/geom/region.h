#ifndef SURF_GEOM_REGION_H_
#define SURF_GEOM_REGION_H_

#include <string>
#include <vector>

namespace surf {

/// \brief A statistic region (paper Def. 2): an axis-aligned hyper-rectangle
/// in R^d encoded by its center `x` and per-dimension half side-lengths `l`.
///
/// The hyper-rectangle covers [x_i - l_i, x_i + l_i] on each dimension i.
/// Optimizers treat a region as a flat vector in R^{2d} (the paper's
/// particle/solution space): the first d entries are the center, the last d
/// the half-lengths. `FromFlat`/`ToFlat` convert between the encodings.
class Region {
 public:
  Region() = default;

  /// Constructs from explicit center and half-lengths (equal sizes).
  Region(std::vector<double> center, std::vector<double> half_lengths);

  /// Builds the region from lo/hi corner vectors; requires lo <= hi.
  static Region FromCorners(const std::vector<double>& lo,
                            const std::vector<double>& hi);

  /// Decodes a flat R^{2d} particle vector [x_1..x_d, l_1..l_d].
  static Region FromFlat(const std::vector<double>& flat);

  /// Encodes as a flat R^{2d} vector.
  std::vector<double> ToFlat() const;

  size_t dims() const { return center_.size(); }
  const std::vector<double>& center() const { return center_; }
  const std::vector<double>& half_lengths() const { return half_lengths_; }

  double center(size_t i) const { return center_[i]; }
  double half_length(size_t i) const { return half_lengths_[i]; }

  /// Lower/upper edge of the box on dimension i.
  double lo(size_t i) const { return center_[i] - half_lengths_[i]; }
  double hi(size_t i) const { return center_[i] + half_lengths_[i]; }

  /// Mutable access used by optimizers while moving particles.
  void set_center(size_t i, double v) { center_[i] = v; }
  void set_half_length(size_t i, double v) { half_lengths_[i] = v; }

  /// True if point `a` (length >= dims()) falls inside the box on all of
  /// the region's dimensions (paper Def. 2 membership test).
  bool Contains(const double* a) const;
  bool Contains(const std::vector<double>& a) const;

  /// Volume prod_i (2 l_i). Zero-dimensional regions have volume 1.
  double Volume() const;

  /// True if any half-length is negative (degenerate particle state).
  bool Degenerate() const;

  /// Intersection volume with another region of the same dimensionality.
  double OverlapVolume(const Region& other) const;

  /// Union volume via inclusion–exclusion on two boxes.
  double UnionVolume(const Region& other) const;

  /// Intersection-over-Union (paper Eq. 10, the Jaccard index on boxes).
  /// Returns 0 when the union has zero volume.
  double IoU(const Region& other) const;

  /// True if this box lies fully inside `other`.
  bool Within(const Region& other) const;

  /// Euclidean distance between the flat R^{2d} encodings (used by GSO
  /// neighborhoods and by result clustering).
  double FlatDistance(const Region& other) const;

  /// Clamps the center into [lo, hi] per dimension and half-lengths into
  /// [min_len, max_len]; keeps optimizer particles in the valid domain.
  void ClampTo(const std::vector<double>& lo, const std::vector<double>& hi,
               double min_len, double max_len);

  /// "center=[..], len=[..]" debug form.
  std::string ToString() const;

  bool operator==(const Region& other) const;

 private:
  std::vector<double> center_;
  std::vector<double> half_lengths_;
};

}  // namespace surf

#endif  // SURF_GEOM_REGION_H_
