#ifndef SURF_ML_MATRIX_H_
#define SURF_ML_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <vector>

namespace surf {

/// \brief Column-major feature matrix for the ML substrate.
///
/// Tree training repeatedly scans one feature across many rows, so features
/// are stored contiguously. Rows are appended; the width is fixed at
/// construction.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  explicit FeatureMatrix(size_t num_features) : cols_(num_features) {}

  size_t num_rows() const { return num_rows_; }
  size_t num_features() const { return cols_.size(); }

  /// Appends one row (must match num_features()).
  void AddRow(const std::vector<double>& x) {
    assert(x.size() == cols_.size());
    for (size_t j = 0; j < x.size(); ++j) cols_[j].push_back(x[j]);
    ++num_rows_;
  }

  void Reserve(size_t rows) {
    for (auto& c : cols_) c.reserve(rows);
  }

  /// Contiguous storage of feature j.
  const std::vector<double>& feature(size_t j) const { return cols_[j]; }

  /// Raw pointer to feature j's column (for copy-free batch traversal).
  const double* col_data(size_t j) const { return cols_[j].data(); }

  /// Column pointers for all features, in feature order — the view the
  /// blocked tree-prediction kernel walks without gathering rows.
  std::vector<const double*> ColPointers() const {
    std::vector<const double*> out(cols_.size());
    for (size_t j = 0; j < cols_.size(); ++j) out[j] = cols_[j].data();
    return out;
  }

  double Get(size_t row, size_t j) const { return cols_[j][row]; }

  /// Gathers a row (for per-point prediction APIs).
  std::vector<double> Row(size_t row) const {
    std::vector<double> out(num_features());
    for (size_t j = 0; j < out.size(); ++j) out[j] = cols_[j][row];
    return out;
  }

  /// Selects a subset of rows into a new matrix.
  FeatureMatrix Gather(const std::vector<size_t>& rows) const;

 private:
  std::vector<std::vector<double>> cols_;
  size_t num_rows_ = 0;
};

}  // namespace surf

#endif  // SURF_ML_MATRIX_H_
