// Extension: HTTP front-end serving throughput (ISSUE 3 acceptance) and
// cancellation CPU reclaim (ISSUE 4 acceptance).
//
// Closed-loop multi-connection load generator against a loopback surfd
// instance: N persistent keep-alive connections (default 32) each send
// POST /v1/mine back-to-back against a warm surrogate cache for a fixed
// duration. Reports qps, p50/p99 latency, and the cache hit ratio, then
// re-loads the server and calls Shutdown() mid-flight to prove the
// graceful drain: every response the server wrote arrives complete at a
// client (no partial/truncated responses under load).
//
// A third phase measures the CPU reclaimed by cancellation: one long
// mine request is run to completion over POST /v1/mine, then the same
// request is submitted as an async job (POST /v1/jobs) and cancelled
// shortly after (DELETE /v1/jobs/{id}); the job must reach its terminal
// Cancelled state in a small fraction of the run-to-completion
// wall-time, proving a cancelled search stops computing instead of
// stranding its worker.
//
// Writes BENCH_http.json (override with SURF_BENCH_HTTP_JSON).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "net/http_server.h"
#include "net/json_codec.h"
#include "net/metrics.h"
#include "net/surf_handler.h"
#include "serve/mining_service.h"
#include "util/cli.h"
#include "util/failpoint.h"
#include "util/json.h"
#include "util/stopwatch.h"

using namespace surf;

namespace {

/// Outcome of one blocking request over a persistent connection.
enum class RequestOutcome {
  kComplete,        // full response received
  kClosedCleanly,   // EOF before any response byte (drain race: retryable)
  kPartial,         // response started but truncated — a dropped response
  kSendFailed,      // connection already closed when sending
};

/// Minimal blocking keep-alive HTTP client.
class BenchClient {
 public:
  ~BenchClient() { Close(); }

  bool Connect(uint16_t port) {
    Close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval timeout{30, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      Close();
      return false;
    }
    return true;
  }

  RequestOutcome Request(const std::string& wire, int* status,
                         std::string* body) {
    size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::send(fd_, wire.data() + sent, wire.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return RequestOutcome::kSendFailed;
      sent += static_cast<size_t>(n);
    }
    std::string buffer;
    size_t head_end = std::string::npos;
    while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      if (!Fill(&buffer)) {
        return buffer.empty() ? RequestOutcome::kClosedCleanly
                              : RequestOutcome::kPartial;
      }
    }
    *status = std::atoi(buffer.substr(9, 3).c_str());
    size_t content_length = 0;
    const size_t cl = buffer.find("Content-Length: ");
    if (cl != std::string::npos && cl < head_end) {
      content_length = static_cast<size_t>(
          std::atoll(buffer.c_str() + cl + std::strlen("Content-Length: ")));
    }
    std::string payload = buffer.substr(head_end + 4);
    while (payload.size() < content_length) {
      if (!Fill(&payload)) return RequestOutcome::kPartial;
    }
    *body = payload.substr(0, content_length);
    return RequestOutcome::kComplete;
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  bool Fill(std::string* buffer) {
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer->append(chunk, static_cast<size_t>(n));
    return true;
  }

  int fd_ = -1;
};

std::string WireRequest(const std::string& path, const std::string& body) {
  return "POST " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

/// A wire request carrying QoS headers (tenant / scheduling class).
std::string WireRequestWithHeaders(
    const std::string& path, const std::string& body,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string wire = "POST " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
  for (const auto& [name, value] : headers) {
    wire += name + ": " + value + "\r\n";
  }
  wire += "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n";
  wire += body;
  return wire;
}

double PercentileMs(std::vector<double>* latencies_ms, double q) {
  if (latencies_ms->empty()) return 0.0;
  std::sort(latencies_ms->begin(), latencies_ms->end());
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(latencies_ms->size() - 1));
  return (*latencies_ms)[idx];
}

struct HttpBenchReport {
  size_t connections = 0;
  double duration_seconds = 0.0;
  uint64_t requests = 0;
  uint64_t errors = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double cache_hit_ratio = 0.0;
  uint64_t drain_responses_client = 0;
  uint64_t drain_responses_server = 0;
  uint64_t drain_partial = 0;
  bool drain_clean = false;
  double run_to_completion_seconds = 0.0;
  double cancelled_job_seconds = 0.0;
  double cancel_reclaim_ratio = 0.0;
  bool cancel_clean = false;
  uint64_t fault_requests = 0;
  uint64_t fault_ok = 0;
  double fault_availability = 0.0;
  double fault_baseline_p99_ms = 0.0;
  double fault_p99_ms = 0.0;
  uint64_t fault_degraded_serves = 0;
  uint64_t fault_training_failures = 0;
  bool fault_clean = false;
  bool throughput_clean = false;
  double mixed_interactive_baseline_p99_ms = 0.0;
  double mixed_interactive_p99_ms = 0.0;
  double mixed_batch_qps = 0.0;
  uint64_t mixed_batch_completed = 0;
  double inversion_ratio = 0.0;
  bool priority_clean = false;
};

/// The pre-event-loop thread-per-connection transport measured ~193 qps
/// at 361ms p99 on this recipe (committed BENCH_http.json baseline).
/// The event-loop + coalescing transport must at least double the
/// throughput without giving back latency.
constexpr double kBaselineQps = 193.0;
constexpr double kBaselineP99Ms = 361.0;
/// Interactive p99 under a batch flood may degrade at most 20% over
/// interactive-alone p99 on the same server (priority-inversion gate).
constexpr double kMaxInversionRatio = 1.2;

void WriteJsonReport(const HttpBenchReport& r, const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"connections\": %zu,\n"
               "  \"duration_seconds\": %.3f,\n"
               "  \"requests\": %llu,\n"
               "  \"errors\": %llu,\n"
               "  \"qps\": %.2f,\n"
               "  \"p50_latency_ms\": %.3f,\n"
               "  \"p99_latency_ms\": %.3f,\n"
               "  \"cache_hit_ratio\": %.4f,\n"
               "  \"drain_responses_client\": %llu,\n"
               "  \"drain_responses_server\": %llu,\n"
               "  \"drain_partial_responses\": %llu,\n"
               "  \"drain_clean\": %s,\n"
               "  \"run_to_completion_seconds\": %.3f,\n"
               "  \"cancelled_job_seconds\": %.3f,\n"
               "  \"cancel_reclaim_ratio\": %.4f,\n"
               "  \"cancel_clean\": %s,\n"
               "  \"fault_requests\": %llu,\n"
               "  \"fault_ok\": %llu,\n"
               "  \"fault_availability\": %.4f,\n"
               "  \"fault_baseline_p99_ms\": %.3f,\n"
               "  \"fault_p99_ms\": %.3f,\n"
               "  \"fault_degraded_serves\": %llu,\n"
               "  \"fault_training_failures\": %llu,\n"
               "  \"fault_clean\": %s,\n"
               "  \"throughput_clean\": %s,\n"
               "  \"mixed_interactive_baseline_p99_ms\": %.3f,\n"
               "  \"mixed_interactive_p99_ms\": %.3f,\n"
               "  \"mixed_batch_qps\": %.2f,\n"
               "  \"mixed_batch_completed\": %llu,\n"
               "  \"inversion_ratio\": %.4f,\n"
               "  \"priority_clean\": %s\n"
               "}\n",
               r.connections, r.duration_seconds,
               static_cast<unsigned long long>(r.requests),
               static_cast<unsigned long long>(r.errors), r.qps, r.p50_ms,
               r.p99_ms, r.cache_hit_ratio,
               static_cast<unsigned long long>(r.drain_responses_client),
               static_cast<unsigned long long>(r.drain_responses_server),
               static_cast<unsigned long long>(r.drain_partial),
               r.drain_clean ? "true" : "false",
               r.run_to_completion_seconds, r.cancelled_job_seconds,
               r.cancel_reclaim_ratio, r.cancel_clean ? "true" : "false",
               static_cast<unsigned long long>(r.fault_requests),
               static_cast<unsigned long long>(r.fault_ok),
               r.fault_availability, r.fault_baseline_p99_ms, r.fault_p99_ms,
               static_cast<unsigned long long>(r.fault_degraded_serves),
               static_cast<unsigned long long>(r.fault_training_failures),
               r.fault_clean ? "true" : "false",
               r.throughput_clean ? "true" : "false",
               r.mixed_interactive_baseline_p99_ms, r.mixed_interactive_p99_ms,
               r.mixed_batch_qps,
               static_cast<unsigned long long>(r.mixed_batch_completed),
               r.inversion_ratio, r.priority_clean ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const size_t connections =
      static_cast<size_t>(flags.GetInt("connections", 32));
  const double seconds = flags.GetDouble("seconds", 3.0);
  const size_t queries = static_cast<size_t>(flags.GetInt("queries", 2000));

  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 2;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.num_background = 12000;
  spec.seed = 31;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);

  // The serving recipe from bench/ext_service: seeded init, no
  // per-iteration KDE integrals, modest swarm — representative of a
  // latency-sensitive deployment.
  MineRequest request;
  request.dataset = "bench";
  request.statistic = Statistic::Count(ds.region_cols);
  request.threshold = 1000.0;
  request.workload.num_queries = queries;
  request.surrogate.gbrt.n_estimators = 100;
  request.finder.gso.max_iterations = 30;
  request.finder.use_kde_guidance = false;
  const std::string mine_wire =
      WireRequest("/v1/mine", WriteJson(MineRequestToJson(request)));

  HttpBenchReport report;
  report.connections = connections;
  report.duration_seconds = seconds;

  // ---- phase 1: closed-loop throughput against a warm cache.
  {
    MiningService service;
    if (auto st = service.RegisterDataset("bench", ds.data); !st.ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
      return 1;
    }
    ServerMetrics metrics;
    SurfHandler handler(&service, &metrics);
    HttpServer::Options options;
    options.max_inflight = connections + 4;
    options.num_workers = connections + 4;
    HttpServer server(options, handler.AsHttpHandler());
    if (auto st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
      return 1;
    }

    // Warm the cache so the loop measures serving, not training.
    {
      BenchClient warmer;
      if (!warmer.Connect(server.port())) {
        std::fprintf(stderr, "cannot connect to loopback server\n");
        return 1;
      }
      int status = 0;
      std::string body;
      if (warmer.Request(mine_wire, &status, &body) !=
              RequestOutcome::kComplete ||
          status != 200) {
        std::fprintf(stderr, "warmup request failed (status %d): %s\n",
                     status, body.c_str());
        return 1;
      }
    }

    std::printf("== HTTP closed-loop: %zu connections x %.1fs against a "
                "warm cache ==\n",
                connections, seconds);
    std::atomic<bool> stop{false};
    std::vector<std::vector<double>> latencies(connections);
    std::vector<uint64_t> errors(connections, 0);
    std::vector<std::thread> workers;
    workers.reserve(connections);
    const uint16_t port = server.port();
    for (size_t i = 0; i < connections; ++i) {
      workers.emplace_back([&, i] {
        BenchClient client;
        if (!client.Connect(port)) {
          ++errors[i];
          return;
        }
        while (!stop.load(std::memory_order_relaxed)) {
          Stopwatch timer;
          int status = 0;
          std::string body;
          const RequestOutcome outcome =
              client.Request(mine_wire, &status, &body);
          if (outcome != RequestOutcome::kComplete || status != 200 ||
              body.find("\"cache_hit\":true") == std::string::npos) {
            ++errors[i];
            if (outcome != RequestOutcome::kComplete) break;
            continue;
          }
          latencies[i].push_back(timer.ElapsedMillis());
        }
      });
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(static_cast<int>(seconds * 1000)));
    stop.store(true);
    for (std::thread& t : workers) t.join();
    server.Shutdown();

    std::vector<double> all;
    for (const auto& per_conn : latencies) {
      all.insert(all.end(), per_conn.begin(), per_conn.end());
      report.requests += per_conn.size();
    }
    for (uint64_t e : errors) report.errors += e;
    report.qps = static_cast<double>(report.requests) / seconds;
    report.p50_ms = PercentileMs(&all, 0.50);
    report.p99_ms = PercentileMs(&all, 0.99);
    const SurrogateCache::Stats cache = service.cache().stats();
    report.cache_hit_ratio =
        cache.hits + cache.misses == 0
            ? 0.0
            : static_cast<double>(cache.hits) /
                  static_cast<double>(cache.hits + cache.misses);
    report.throughput_clean =
        report.qps >= 2.0 * kBaselineQps && report.p99_ms <= kBaselineP99Ms;
    std::printf("served %llu requests (%.1f qps), p50 %.2fms, p99 %.2fms, "
                "cache hit ratio %.3f, %llu errors -> %s (gate: >= %.0f qps "
                "at p99 <= %.0fms)\n",
                static_cast<unsigned long long>(report.requests), report.qps,
                report.p50_ms, report.p99_ms, report.cache_hit_ratio,
                static_cast<unsigned long long>(report.errors),
                report.throughput_clean ? "clean" : "THROUGHPUT GATE FAILED",
                2.0 * kBaselineQps, kBaselineP99Ms);
  }

  // ---- phase 2: graceful drain under load. Clients blast requests with
  // no coordination; Shutdown() lands mid-flight. Every response the
  // server counts as served must arrive complete client-side.
  {
    MiningService service;
    if (auto st = service.RegisterDataset("bench", ds.data); !st.ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
      return 1;
    }
    ServerMetrics metrics;
    SurfHandler handler(&service, &metrics);
    HttpServer::Options options;
    options.max_inflight = connections + 4;
    options.num_workers = connections + 4;
    HttpServer server(options, handler.AsHttpHandler());
    if (auto st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
      return 1;
    }
    {
      BenchClient warmer;
      int status = 0;
      std::string body;
      if (!warmer.Connect(server.port()) ||
          warmer.Request(mine_wire, &status, &body) !=
              RequestOutcome::kComplete) {
        std::fprintf(stderr, "drain-phase warmup failed\n");
        return 1;
      }
    }

    std::atomic<uint64_t> complete{0};
    std::atomic<uint64_t> partial{0};
    std::vector<std::thread> workers;
    workers.reserve(connections);
    const uint16_t port = server.port();
    for (size_t i = 0; i < connections; ++i) {
      workers.emplace_back([&, port] {
        BenchClient client;
        if (!client.Connect(port)) return;
        while (true) {
          int status = 0;
          std::string body;
          const RequestOutcome outcome =
              client.Request(mine_wire, &status, &body);
          if (outcome == RequestOutcome::kComplete) {
            complete.fetch_add(1);
            continue;  // keep loading until the drain closes us
          }
          if (outcome == RequestOutcome::kPartial) partial.fetch_add(1);
          break;  // clean close / send failure: the server is gone
        }
      });
    }
    // Let the load build, then drain mid-flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    server.Shutdown();
    for (std::thread& t : workers) t.join();

    report.drain_responses_client = complete.load();
    // The warmup response is counted by the server too; subtract it to
    // compare against the loaded clients only.
    report.drain_responses_server = server.stats().requests_served - 1;
    report.drain_partial = partial.load();
    report.drain_clean =
        report.drain_partial == 0 &&
        report.drain_responses_client == report.drain_responses_server;
    std::printf("drain under load: server wrote %llu responses, clients "
                "received %llu complete / %llu partial -> %s\n",
                static_cast<unsigned long long>(report.drain_responses_server),
                static_cast<unsigned long long>(report.drain_responses_client),
                static_cast<unsigned long long>(report.drain_partial),
                report.drain_clean ? "clean" : "DROPPED RESPONSES");
  }

  // ---- phase 3: cancellation CPU reclaim. The same long search is run
  // once to completion (blocking /v1/mine) and once as an async job
  // cancelled ~100ms in; the cancelled job must reach its terminal state
  // in a small fraction of the run-to-completion wall-time.
  {
    MiningService service;
    if (auto st = service.RegisterDataset("bench", ds.data); !st.ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
      return 1;
    }
    ServerMetrics metrics;
    SurfHandler handler(&service, &metrics);
    HttpServer::Options options;
    options.request_deadline_seconds = 120.0;  // the full run must finish
    HttpServer server(options, handler.AsHttpHandler());
    if (auto st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
      return 1;
    }

    // A deliberately long search: convergence disabled, big iteration
    // budget, per-iteration KDE mass guidance on. Same cache key as the
    // warmup (finder knobs are per-request, not part of the key).
    MineRequest slow = request;
    slow.finder.gso.max_iterations = 1500;
    slow.finder.gso.convergence_tol_frac = 0.0;
    slow.finder.use_kde_guidance = true;
    const std::string slow_wire =
        WireRequest("/v1/mine", WriteJson(MineRequestToJson(slow)));

    BenchClient client;
    int status = 0;
    std::string body;
    if (!client.Connect(server.port()) ||
        client.Request(mine_wire, &status, &body) !=
            RequestOutcome::kComplete ||
        status != 200) {
      std::fprintf(stderr, "cancel-phase warmup failed (status %d)\n",
                   status);
      return 1;
    }

    std::printf("== cancellation: long mine to completion vs cancelled "
                "job ==\n");
    Stopwatch full_timer;
    if (client.Request(slow_wire, &status, &body) !=
            RequestOutcome::kComplete ||
        status != 200) {
      std::fprintf(stderr, "run-to-completion request failed (status %d)\n",
                   status);
      return 1;
    }
    report.run_to_completion_seconds = full_timer.ElapsedSeconds();

    Stopwatch cancel_timer;
    const std::string submit_wire =
        WireRequest("/v1/jobs", WriteJson(MineRequestToJson(slow)));
    if (client.Request(submit_wire, &status, &body) !=
            RequestOutcome::kComplete ||
        status != 202) {
      std::fprintf(stderr, "job submit failed (status %d): %s\n", status,
                   body.c_str());
      return 1;
    }
    auto submitted = ParseJson(body);
    const JsonValue* id_field =
        submitted.ok() ? submitted->Find("job_id") : nullptr;
    if (id_field == nullptr || !id_field->is_string()) {
      std::fprintf(stderr, "job submit returned no job_id: %s\n",
                   body.c_str());
      return 1;
    }
    const std::string job_id = id_field->string_value();

    // Let the search get going, then cancel.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::string cancel_wire = "DELETE /v1/jobs/" + job_id +
                                    " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                                    "Content-Length: 0\r\n\r\n";
    if (client.Request(cancel_wire, &status, &body) !=
            RequestOutcome::kComplete ||
        status != 200) {
      std::fprintf(stderr, "job cancel failed (status %d): %s\n", status,
                   body.c_str());
      return 1;
    }

    // Poll until the job reaches its terminal state.
    const std::string poll_wire = "GET /v1/jobs/" + job_id +
                                  " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                                  "Content-Length: 0\r\n\r\n";
    bool cancelled_status = false;
    for (int i = 0; i < 2000; ++i) {
      if (client.Request(poll_wire, &status, &body) !=
              RequestOutcome::kComplete ||
          status != 200) {
        std::fprintf(stderr, "job poll failed (status %d)\n", status);
        return 1;
      }
      auto polled = ParseJson(body);
      const JsonValue* response_field =
          polled.ok() ? polled->Find("response") : nullptr;
      if (response_field != nullptr) {
        const JsonValue* job_status = response_field->Find("status");
        const JsonValue* code =
            job_status != nullptr ? job_status->Find("code") : nullptr;
        cancelled_status = code != nullptr && code->is_string() &&
                           code->string_value() == "cancelled";
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    report.cancelled_job_seconds = cancel_timer.ElapsedSeconds();
    report.cancel_reclaim_ratio =
        report.run_to_completion_seconds > 0.0
            ? report.cancelled_job_seconds / report.run_to_completion_seconds
            : 0.0;
    report.cancel_clean =
        cancelled_status && report.cancel_reclaim_ratio < 0.5;
    std::printf("run-to-completion %.3fs vs cancelled job %.3fs "
                "(ratio %.3f, terminal status %s) -> %s\n",
                report.run_to_completion_seconds,
                report.cancelled_job_seconds, report.cancel_reclaim_ratio,
                cancelled_status ? "cancelled" : "NOT CANCELLED",
                report.cancel_clean ? "clean" : "CPU NOT RECLAIMED");
    server.Shutdown();
  }

  // ---- phase 4: availability under injected training faults (ISSUE 6
  // acceptance). A short-TTL cache forces continual revalidation while
  // the serve.train failpoint fails 5% of trainings; stale-while-
  // revalidate must keep answering 200 (flagged degraded when a retrain
  // fails) instead of surfacing 500s. Gates: availability >= 99% and a
  // fault-phase p99 no worse than 2x the in-phase (fault-free) p99
  // measured against the same short-TTL retrain cadence.
  {
    MiningService::Options service_options;
    service_options.cache.max_age_seconds = 0.1;  // continual revalidation
    service_options.cache.stale_while_revalidate = true;
    MiningService service(service_options);
    // A lighter recipe than phase 1: retrains complete in tens of
    // milliseconds, so the run packs in enough training attempts for a
    // 5% fire rate to actually produce failures worth surviving.
    MineRequest fault_request = request;
    fault_request.workload.num_queries = 300;
    fault_request.surrogate.gbrt.n_estimators = 30;
    fault_request.finder.gso.max_iterations = 20;
    const std::string fault_wire =
        WireRequest("/v1/mine", WriteJson(MineRequestToJson(fault_request)));
    if (auto st = service.RegisterDataset("bench", ds.data); !st.ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
      return 1;
    }
    ServerMetrics metrics;
    SurfHandler handler(&service, &metrics);
    const size_t fault_connections = std::min<size_t>(connections, 8);
    HttpServer::Options options;
    options.max_inflight = fault_connections + 4;
    options.num_workers = fault_connections + 4;
    HttpServer server(options, handler.AsHttpHandler());
    if (auto st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
      return 1;
    }
    {
      BenchClient warmer;
      int status = 0;
      std::string body;
      if (!warmer.Connect(server.port()) ||
          warmer.Request(fault_wire, &status, &body) !=
              RequestOutcome::kComplete ||
          status != 200) {
        std::fprintf(stderr, "fault-phase warmup failed (status %d)\n",
                     status);
        return 1;
      }
    }

    // One closed-loop sub-phase; latencies and 200-counts per run.
    const auto run_subphase = [&](double run_seconds,
                                  std::vector<double>* latencies_out,
                                  uint64_t* total_out, uint64_t* ok_out) {
      std::atomic<bool> stop{false};
      std::vector<std::vector<double>> latencies(fault_connections);
      std::vector<uint64_t> totals(fault_connections, 0);
      std::vector<uint64_t> oks(fault_connections, 0);
      std::vector<std::thread> workers;
      workers.reserve(fault_connections);
      const uint16_t port = server.port();
      for (size_t i = 0; i < fault_connections; ++i) {
        workers.emplace_back([&, i] {
          BenchClient client;
          if (!client.Connect(port)) return;
          while (!stop.load(std::memory_order_relaxed)) {
            Stopwatch timer;
            int status = 0;
            std::string body;
            if (client.Request(fault_wire, &status, &body) !=
                RequestOutcome::kComplete) {
              break;
            }
            ++totals[i];
            if (status == 200) {
              ++oks[i];
              latencies[i].push_back(timer.ElapsedMillis());
            }
          }
        });
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int>(run_seconds * 1000)));
      stop.store(true);
      for (std::thread& t : workers) t.join();
      for (size_t i = 0; i < fault_connections; ++i) {
        latencies_out->insert(latencies_out->end(), latencies[i].begin(),
                              latencies[i].end());
        *total_out += totals[i];
        *ok_out += oks[i];
      }
    };

    std::printf("== fault injection: %zu connections, 0.1s cache TTL, "
                "serve.train failing 5%% of retrains ==\n",
                fault_connections);
    std::vector<double> baseline_latencies;
    uint64_t baseline_total = 0, baseline_ok = 0;
    run_subphase(seconds, &baseline_latencies, &baseline_total,
                 &baseline_ok);
    report.fault_baseline_p99_ms = PercentileMs(&baseline_latencies, 0.99);

    const SurrogateCache::Stats before = service.cache().stats();
    FailpointRegistry::Global().SetSeed(2026);
    if (auto st =
            FailpointRegistry::Global().Set("serve.train", "prob:0.05");
        !st.ok()) {
      std::fprintf(stderr, "failpoint arm failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::vector<double> fault_latencies;
    run_subphase(seconds, &fault_latencies, &report.fault_requests,
                 &report.fault_ok);
    FailpointRegistry::Global().ClearAll();
    server.Shutdown();

    const SurrogateCache::Stats after = service.cache().stats();
    report.fault_p99_ms = PercentileMs(&fault_latencies, 0.99);
    report.fault_availability =
        report.fault_requests == 0
            ? 0.0
            : static_cast<double>(report.fault_ok) /
                  static_cast<double>(report.fault_requests);
    report.fault_degraded_serves =
        after.degraded_serves - before.degraded_serves;
    report.fault_training_failures =
        after.training_failures - before.training_failures;
    report.fault_clean =
        report.fault_requests > 0 && report.fault_availability >= 0.99 &&
        report.fault_p99_ms <= 2.0 * report.fault_baseline_p99_ms;
    std::printf(
        "fault phase: %llu requests, availability %.4f, p99 %.2fms vs "
        "baseline p99 %.2fms, %llu degraded serves, %llu training "
        "failures -> %s\n",
        static_cast<unsigned long long>(report.fault_requests),
        report.fault_availability, report.fault_p99_ms,
        report.fault_baseline_p99_ms,
        static_cast<unsigned long long>(report.fault_degraded_serves),
        static_cast<unsigned long long>(report.fault_training_failures),
        report.fault_clean ? "clean" : "DEGRADATION GATE FAILED");
  }

  // ---- phase 5: per-tenant QoS + priority scheduling (ISSUE 10
  // acceptance). Interactive clients serve warm-cache mines while an
  // "analytics" tenant floods batch-class requests with distinct
  // thresholds (each a fresh training — real CPU work). The batch
  // workers run niced and strictly separated from the interactive pool,
  // so interactive p99 under the flood must stay within 20% of the
  // interactive-alone p99 measured on the same server, while the batch
  // flood still makes progress.
  {
    MiningService service;
    if (auto st = service.RegisterDataset("bench", ds.data); !st.ok()) {
      std::fprintf(stderr, "register failed: %s\n", st.ToString().c_str());
      return 1;
    }
    ServerMetrics metrics;
    SurfHandler handler(&service, &metrics);
    const size_t interactive_conns = std::min<size_t>(connections, 8);
    const size_t batch_conns = 4;
    HttpServer::Options options;
    options.max_inflight = interactive_conns + batch_conns + 4;
    options.num_workers = interactive_conns + 4;
    options.batch_workers = 2;
    // The analytics tenant is quota-bounded to its flood size: the QoS
    // path is exercised on every batch admission without rejections.
    options.qos.per_tenant["analytics"].max_inflight = batch_conns;
    HttpServer server(options, handler.AsHttpHandler());
    if (auto st = server.Start(); !st.ok()) {
      std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
      return 1;
    }
    {
      BenchClient warmer;
      int status = 0;
      std::string body;
      if (!warmer.Connect(server.port()) ||
          warmer.Request(mine_wire, &status, &body) !=
              RequestOutcome::kComplete ||
          status != 200) {
        std::fprintf(stderr, "mixed-phase warmup failed (status %d)\n",
                     status);
        return 1;
      }
    }
    const uint16_t port = server.port();

    // Closed-loop interactive load for `run_seconds`; returns latencies.
    const auto run_interactive = [&](double run_seconds,
                                     std::vector<double>* latencies_out) {
      std::atomic<bool> stop{false};
      std::vector<std::vector<double>> latencies(interactive_conns);
      std::vector<std::thread> workers;
      workers.reserve(interactive_conns);
      for (size_t i = 0; i < interactive_conns; ++i) {
        workers.emplace_back([&, i] {
          BenchClient client;
          if (!client.Connect(port)) return;
          while (!stop.load(std::memory_order_relaxed)) {
            Stopwatch timer;
            int status = 0;
            std::string body;
            if (client.Request(mine_wire, &status, &body) !=
                    RequestOutcome::kComplete ||
                status != 200) {
              break;
            }
            latencies[i].push_back(timer.ElapsedMillis());
          }
        });
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<int>(run_seconds * 1000)));
      stop.store(true);
      for (std::thread& t : workers) t.join();
      for (auto& per_conn : latencies) {
        latencies_out->insert(latencies_out->end(), per_conn.begin(),
                              per_conn.end());
      }
    };

    std::printf("== mixed QoS: %zu interactive + %zu batch (tenant "
                "\"analytics\") connections ==\n",
                interactive_conns, batch_conns);
    // Sub-phase A: interactive alone.
    std::vector<double> alone;
    run_interactive(seconds, &alone);
    report.mixed_interactive_baseline_p99_ms = PercentileMs(&alone, 0.99);

    // Sub-phase B: the same interactive load with a batch flood under
    // it. Every batch request carries a distinct threshold, so each one
    // is a fresh training — sustained CPU pressure, no cache shortcut.
    std::atomic<bool> batch_stop{false};
    std::atomic<uint64_t> batch_done{0};
    std::atomic<int> batch_seq{0};
    std::vector<std::thread> batch_workers;
    batch_workers.reserve(batch_conns);
    for (size_t i = 0; i < batch_conns; ++i) {
      batch_workers.emplace_back([&] {
        BenchClient client;
        if (!client.Connect(port)) return;
        while (!batch_stop.load(std::memory_order_relaxed)) {
          MineRequest batch_request = request;
          batch_request.workload.num_queries = 300;
          batch_request.surrogate.gbrt.n_estimators = 30;
          batch_request.finder.gso.max_iterations = 20;
          batch_request.threshold = 900.0 + batch_seq.fetch_add(1);
          const std::string wire = WireRequestWithHeaders(
              "/v1/mine", WriteJson(MineRequestToJson(batch_request)),
              {{"x-surf-priority", "batch"}, {"x-surf-tenant", "analytics"}});
          int status = 0;
          std::string body;
          if (client.Request(wire, &status, &body) !=
              RequestOutcome::kComplete) {
            break;
          }
          if (status == 200) batch_done.fetch_add(1);
        }
      });
    }
    std::vector<double> flooded;
    Stopwatch flood_timer;
    run_interactive(seconds, &flooded);
    const double flood_seconds = flood_timer.ElapsedSeconds();
    batch_stop.store(true);
    for (std::thread& t : batch_workers) t.join();
    server.Shutdown();

    report.mixed_interactive_p99_ms = PercentileMs(&flooded, 0.99);
    report.mixed_batch_completed = batch_done.load();
    report.mixed_batch_qps =
        flood_seconds > 0.0
            ? static_cast<double>(report.mixed_batch_completed) /
                  flood_seconds
            : 0.0;
    // Guard the ratio against sub-millisecond baselines: at that scale
    // scheduler jitter dominates and the ratio measures noise.
    const double floor_ms =
        std::max(report.mixed_interactive_baseline_p99_ms, 1.0);
    report.inversion_ratio = report.mixed_interactive_p99_ms / floor_ms;
    report.priority_clean =
        !flooded.empty() && report.mixed_batch_completed > 0 &&
        report.inversion_ratio <= kMaxInversionRatio;
    std::printf("interactive p99 %.2fms alone vs %.2fms under batch flood "
                "(inversion ratio %.3f, gate <= %.2f), batch %.1f qps "
                "(%llu completed) -> %s\n",
                report.mixed_interactive_baseline_p99_ms,
                report.mixed_interactive_p99_ms, report.inversion_ratio,
                kMaxInversionRatio, report.mixed_batch_qps,
                static_cast<unsigned long long>(report.mixed_batch_completed),
                report.priority_clean ? "clean" : "PRIORITY GATE FAILED");
  }

  const char* json_env = std::getenv("SURF_BENCH_HTTP_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_http.json";
  WriteJsonReport(report, json_path);
  std::printf("wrote %s\n", json_path.c_str());

  // Acceptance contract: ≥ 32 sustained connections with a warm cache,
  // and a drain that drops nothing.
  if (report.requests == 0 || report.errors > 0) {
    std::fprintf(stderr, "FAIL: closed loop had errors\n");
    return 1;
  }
  if (!report.throughput_clean) {
    std::fprintf(stderr,
                 "FAIL: throughput gate (%.1f qps at p99 %.2fms; need >= "
                 "%.0f qps at p99 <= %.0fms)\n",
                 report.qps, report.p99_ms, 2.0 * kBaselineQps,
                 kBaselineP99Ms);
    return 1;
  }
  if (!report.priority_clean) {
    std::fprintf(stderr,
                 "FAIL: priority-inversion gate (interactive p99 %.2fms "
                 "under flood vs %.2fms alone, ratio %.3f > %.2f, or no "
                 "batch progress: %llu completed)\n",
                 report.mixed_interactive_p99_ms,
                 report.mixed_interactive_baseline_p99_ms,
                 report.inversion_ratio, kMaxInversionRatio,
                 static_cast<unsigned long long>(report.mixed_batch_completed));
    return 1;
  }
  if (!report.drain_clean) {
    std::fprintf(stderr, "FAIL: graceful drain dropped responses\n");
    return 1;
  }
  if (!report.cancel_clean) {
    std::fprintf(stderr,
                 "FAIL: cancelled job did not stop promptly "
                 "(%.3fs vs %.3fs run-to-completion)\n",
                 report.cancelled_job_seconds,
                 report.run_to_completion_seconds);
    return 1;
  }
  if (!report.fault_clean) {
    std::fprintf(stderr,
                 "FAIL: fault-injection gate (availability %.4f < 0.99 or "
                 "p99 %.2fms > 2x baseline %.2fms)\n",
                 report.fault_availability, report.fault_p99_ms,
                 report.fault_baseline_p99_ms);
    return 1;
  }
  return 0;
}
