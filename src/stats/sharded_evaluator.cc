#include "stats/sharded_evaluator.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "accel/accel.h"
#include "util/failpoint.h"

namespace surf {

namespace {

/// Process-wide shard-classification totals (see global_telemetry()).
std::atomic<uint64_t> g_pruned{0};
std::atomic<uint64_t> g_block_merged{0};
std::atomic<uint64_t> g_scanned{0};

}  // namespace

ShardedScanEvaluator::GlobalTelemetry
ShardedScanEvaluator::global_telemetry() {
  GlobalTelemetry out;
  out.pruned = g_pruned.load(std::memory_order_relaxed);
  out.block_merged = g_block_merged.load(std::memory_order_relaxed);
  out.scanned = g_scanned.load(std::memory_order_relaxed);
  return out;
}

ShardedScanEvaluator::ShardedScanEvaluator(ShardedDataset data,
                                           Statistic stat,
                                           size_t num_threads)
    : data_(std::move(data)), stat_(std::move(stat)) {
  for ([[maybe_unused]] size_t c : stat_.region_cols) {
    assert(c < data_.num_cols());
  }
  if (stat_.needs_value_column()) {
    assert(stat_.value_col >= 0 &&
           static_cast<size_t>(stat_.value_col) < data_.num_cols());
  }

  if (stat_.kind == StatisticKind::kLabelRatio) {
    shard_matches_.resize(data_.num_shards(), 0);
    const size_t value_col = static_cast<size_t>(stat_.value_col);
    for (size_t s = 0; s < data_.num_shards(); ++s) {
      size_t matches = 0;
      for (double v : data_.shard(s).column(value_col)) {
        if (v == stat_.label_value) ++matches;
      }
      shard_matches_[s] = matches;
    }
  }

  size_t threads = num_threads == 0
                       ? std::min(data_.num_shards(),
                                  ThreadPool::DefaultThreadCount())
                       : std::min(data_.num_shards(), num_threads);
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);
}

void ShardedScanEvaluator::EvalShard(size_t shard_index,
                                     const Region& region,
                                     StatisticAccumulator* acc) const {
  const DatasetShard& shard = data_.shard(shard_index);
  const size_t rows = shard.num_rows();
  if (rows == 0) return;
  const size_t d = stat_.dims();

  // Classify the shard against the box per region column. The legacy
  // inclusion test `!(v < lo || v > hi)` keeps NaN coordinates inside
  // every box, so a shard carrying NaNs on a column can never be pruned
  // on that column's [min, max] (those rows are "inside" regardless);
  // it can still be fully covered — NaN rows pass the legacy test too.
  // `covered` needs no NaN guard: [min, max] spans the non-NaN rows
  // (inside iff within the box) and the NaN rows are inside anyway —
  // including the all-NaN shard, whose empty range +inf..-inf
  // trivially satisfies the test.
  bool disjoint = false;
  bool covered = true;
  for (size_t j = 0; j < d; ++j) {
    const ColumnSummary& s = shard.summary(stat_.region_cols[j]);
    if (s.nan_count == 0 &&
        (s.max < region.lo(j) || s.min > region.hi(j))) {
      disjoint = true;
      break;
    }
    if (s.min < region.lo(j) || s.max > region.hi(j)) covered = false;
  }
  if (disjoint) {
    pruned_.fetch_add(1, std::memory_order_relaxed);
    g_pruned.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  if (covered && stat_.kind != StatisticKind::kMedian) {
    // Every row is inside: the shard's pre-aggregated summary IS the
    // partial accumulator. Summary sums were folded in shard row order,
    // so this path is bit-identical to scanning the shard row by row.
    block_merged_.fetch_add(1, std::memory_order_relaxed);
    g_block_merged.fetch_add(1, std::memory_order_relaxed);
    if (stat_.needs_value_column()) {
      const ColumnSummary& v =
          shard.summary(static_cast<size_t>(stat_.value_col));
      acc->AddBlock(rows, v.sum, v.sum_sq,
                    shard_matches_.empty() ? 0 : shard_matches_[shard_index]);
    } else {
      acc->AddBlock(rows, 0.0, 0.0, 0);
    }
    return;
  }

  scanned_.fetch_add(1, std::memory_order_relaxed);
  g_scanned.fetch_add(1, std::memory_order_relaxed);

  // Branchless membership mask, one pass per still-undecided column,
  // via the dispatched SIMD kernel table. The kernel's inclusion test is
  // the negated form `!(v < lo || v > hi)` — NOT `v >= lo && v <= hi` —
  // reproducing the legacy scan's row test exactly, NaN-keeps-the-row
  // included; being integer-valued it is bit-identical on every backend.
  const AccelOps& ops = Accel();
  std::vector<uint8_t> mask(rows, 1);
  for (size_t j = 0; j < d; ++j) {
    const ColumnSummary& s = shard.summary(stat_.region_cols[j]);
    const double lo = region.lo(j);
    const double hi = region.hi(j);
    if (s.min >= lo && s.max <= hi) continue;  // shard inside on this dim
    const std::vector<double>& col = shard.column(stat_.region_cols[j]);
    ops.mask_range_and(col.data(), rows, lo, hi, mask.data());
  }

  if (!stat_.needs_value_column()) {
    // Count-style statistics reduce the mask directly; integer
    // accumulation is order-independent, so this stays bit-identical to
    // per-row Add() calls.
    acc->AddBlock(ops.mask_count(mask.data(), rows), 0.0, 0.0, 0);
    return;
  }

  const std::vector<double>& values =
      shard.column(static_cast<size_t>(stat_.value_col));
  for (size_t r = 0; r < rows; ++r) {
    if (mask[r]) acc->Add(values[r]);
  }
}

double ShardedScanEvaluator::EvaluateImpl(const Region& region,
                                          const CancelToken& cancel) const {
  assert(region.dims() == stat_.dims());
  // No status channel here: an injected failure becomes an undefined
  // statistic (NaN), the evaluator's native "could not compute" value;
  // a delay action just slows the scan down.
  if (!MaybeFailpoint("shard.evaluate").ok()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const size_t num_shards = data_.num_shards();

  // Per-shard partials land in a pre-sized slot vector and merge in
  // ascending shard index below. The single-threaded path fills the
  // same slots, so the merge tree — and therefore every floating-point
  // rounding — is identical at any thread count.
  std::vector<StatisticAccumulator> partials(num_shards,
                                             StatisticAccumulator(stat_));
  if (pool_ == nullptr) {
    for (size_t s = 0; s < num_shards; ++s) {
      // One poll per shard batch: a fired token abandons the remaining
      // shards (the partial result is discarded by the caller).
      if (cancel.can_cancel() && cancel.cancelled()) break;
      EvalShard(s, region, &partials[s]);
    }
  } else {
    ParallelFor(pool_.get(), num_shards, [&](size_t s) {
      if (cancel.can_cancel() && cancel.cancelled()) return;
      EvalShard(s, region, &partials[s]);
    });
  }

  // Seed the fold with shard 0's partial (a bitwise copy) so the
  // single-shard configuration reproduces the legacy sequential scan
  // exactly, then fold the rest in shard order.
  StatisticAccumulator result = partials[0];
  for (size_t s = 1; s < num_shards; ++s) {
    result.Merge(partials[s]);
  }
  return result.Finalize();
}

}  // namespace surf
