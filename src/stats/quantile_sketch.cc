#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace surf {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Reads a non-negative integer (< 2^53, so JSON doubles carry it
/// exactly) from `obj[key]`.
bool ReadCount(const JsonValue& obj, const char* key, uint64_t* out) {
  const JsonValue* v = obj.Find(key);
  if (v == nullptr || !v->is_number()) return false;
  const double d = v->number_value();
  if (d < 0 || d != std::floor(d) || d > 9007199254740992.0) return false;
  *out = static_cast<uint64_t>(d);
  return true;
}

}  // namespace

QuantileSketch::QuantileSketch(size_t capacity)
    : capacity_(std::max<size_t>(8, capacity)) {}

void QuantileSketch::Add(double value) {
  if (levels_.empty()) {
    levels_.emplace_back();
    parity_.push_back(0);
    levels_[0].reserve(capacity_);
  }
  levels_[0].push_back(value);
  ++count_;
  // Strict `>` so the capacity-th insert is still exact, matching the
  // header's "exact until more than `capacity` values" contract.
  if (levels_[0].size() > capacity_) Compact(0);
}

void QuantileSketch::Compact(size_t level) {
  if (level + 1 >= levels_.size()) {
    levels_.emplace_back();
    parity_.push_back(0);
  }
  std::vector<double>& items = levels_[level];
  std::sort(items.begin(), items.end());
  const size_t offset = parity_[level] & 1;
  parity_[level] ^= 1;
  std::vector<double>& up = levels_[level + 1];
  for (size_t i = offset; i < items.size(); i += 2) {
    up.push_back(items[i]);
  }
  items.clear();
  ++compactions_;
  if (up.size() > capacity_) Compact(level + 1);
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  capacity_ = std::max(capacity_, other.capacity_);
  if (other.levels_.size() > levels_.size()) {
    levels_.resize(other.levels_.size());
    parity_.resize(other.levels_.size(), 0);
  }
  for (size_t i = 0; i < other.levels_.size(); ++i) {
    levels_[i].insert(levels_[i].end(), other.levels_[i].begin(),
                      other.levels_[i].end());
  }
  count_ += other.count_;
  compactions_ += other.compactions_;
  // Restore the capacity invariant bottom-up so promotions cascade in a
  // fixed order regardless of which operand overflowed.
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].size() > capacity_) Compact(i);
  }
}

size_t QuantileSketch::num_retained() const {
  size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

std::vector<std::pair<double, uint64_t>> QuantileSketch::GatherSorted()
    const {
  std::vector<std::pair<double, uint64_t>> weighted;
  weighted.reserve(num_retained());
  for (size_t i = 0; i < levels_.size(); ++i) {
    const uint64_t w = uint64_t{1} << i;
    for (double v : levels_[i]) weighted.emplace_back(v, w);
  }
  std::sort(weighted.begin(), weighted.end());
  return weighted;
}

double QuantileSketch::WalkRank(
    const std::vector<std::pair<double, uint64_t>>& weighted,
    uint64_t rank) {
  // Walk the cumulative weight to the target rank. Compacting an
  // even-sized level preserves total weight exactly (m items of weight
  // w become m/2 of weight 2w); odd sizes drift it by ±w, so a
  // near-maximal rank can run off the end — the final fall-through
  // answers with the largest retained value.
  uint64_t cumulative = 0;
  for (const auto& [value, weight] : weighted) {
    cumulative += weight;
    if (cumulative > rank) return value;
  }
  return weighted.empty() ? kNaN : weighted.back().first;
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return kNaN;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1) + 0.5);
  return WalkRank(GatherSorted(), rank);
}

JsonValue QuantileSketch::ToJson() const {
  JsonValue obj = JsonValue::Object();
  obj.Set("capacity", JsonValue(static_cast<double>(capacity_)));
  obj.Set("count", JsonValue(static_cast<double>(count_)));
  obj.Set("compactions", JsonValue(static_cast<double>(compactions_)));
  JsonValue levels = JsonValue::Array();
  for (const std::vector<double>& level : levels_) {
    JsonValue items = JsonValue::Array();
    for (double v : level) items.Append(JsonValue(DoubleToHex(v)));
    levels.Append(std::move(items));
  }
  obj.Set("levels", std::move(levels));
  JsonValue parity = JsonValue::Array();
  for (uint8_t p : parity_) {
    parity.Append(JsonValue(static_cast<double>(p)));
  }
  obj.Set("parity", std::move(parity));
  return obj;
}

StatusOr<QuantileSketch> QuantileSketch::FromJson(const JsonValue& json) {
  const auto malformed = [](const char* what) {
    return Status::InvalidArgument(std::string("quantile sketch: ") + what);
  };
  if (!json.is_object()) return malformed("expected an object");
  uint64_t capacity = 0, count = 0, compactions = 0;
  if (!ReadCount(json, "capacity", &capacity) || capacity == 0) {
    return malformed("bad 'capacity'");
  }
  if (!ReadCount(json, "count", &count)) return malformed("bad 'count'");
  if (!ReadCount(json, "compactions", &compactions)) {
    return malformed("bad 'compactions'");
  }
  const JsonValue* levels = json.Find("levels");
  const JsonValue* parity = json.Find("parity");
  if (levels == nullptr || !levels->is_array() || parity == nullptr ||
      !parity->is_array() ||
      parity->array().size() != levels->array().size()) {
    return malformed("'levels' and 'parity' must be equal-length arrays");
  }
  QuantileSketch sketch(static_cast<size_t>(capacity));
  // The constructor floors capacity at 8; a wire value below that could
  // not have come from ToJson.
  if (sketch.capacity_ != static_cast<size_t>(capacity)) {
    return malformed("bad 'capacity'");
  }
  sketch.count_ = count;
  sketch.compactions_ = compactions;
  sketch.levels_.resize(levels->array().size());
  sketch.parity_.resize(levels->array().size());
  for (size_t i = 0; i < levels->array().size(); ++i) {
    const JsonValue& items = levels->array()[i];
    if (!items.is_array()) return malformed("level is not an array");
    sketch.levels_[i].reserve(items.array().size());
    for (const JsonValue& item : items.array()) {
      double v = 0.0;
      if (!item.is_string() || !DoubleFromHex(item.string_value(), &v)) {
        return malformed("level value is not a hex double");
      }
      sketch.levels_[i].push_back(v);
    }
    const JsonValue& p = parity->array()[i];
    if (!p.is_number() ||
        (p.number_value() != 0.0 && p.number_value() != 1.0)) {
      return malformed("parity entries must be 0 or 1");
    }
    sketch.parity_[i] = static_cast<uint8_t>(p.number_value());
  }
  return sketch;
}

double QuantileSketch::Median() const {
  if (count_ == 0) return kNaN;
  // Matches the historical exact-path convention: nth_element at n/2,
  // averaged with the lower middle for even n. In exact mode (weights
  // all 1) the rank walk is a plain sorted-order lookup, so the results
  // coincide bit-for-bit with the old raw-buffer implementation. One
  // gather+sort serves both middle ranks.
  const std::vector<std::pair<double, uint64_t>> weighted = GatherSorted();
  const double upper = WalkRank(weighted, count_ / 2);
  if ((count_ & 1) == 1) return upper;
  const double lower = WalkRank(weighted, (count_ - 1) / 2);
  return 0.5 * (lower + upper);
}

}  // namespace surf
