#ifndef SURF_OPT_CLUSTERING_H_
#define SURF_OPT_CLUSTERING_H_

#include <vector>

#include "geom/region.h"

namespace surf {

/// \brief One swarm cluster: the particle indices it contains and its
/// best (highest-fitness) member.
struct SwarmCluster {
  std::vector<size_t> members;
  size_t best_index = 0;
  double best_fitness = 0.0;
};

/// \brief Density-based clustering (DBSCAN) of converged particles in the
/// flat R^{2d} region space.
///
/// The GSO literature extracts the captured local optima by clustering
/// the final swarm; this is the alternative to the greedy IoU-based
/// non-max suppression used by default in SurfFinder. DBSCAN groups
/// particles within `eps` (flat L2) of a core point with at least
/// `min_points` neighbours; noise particles (isolated, typically stuck in
/// invalid space) are dropped. Exposed for the extraction ablation bench.
///
/// Only particles flagged valid participate; indices refer to the input
/// vectors.
std::vector<SwarmCluster> ClusterSwarm(const std::vector<Region>& particles,
                                       const std::vector<double>& fitness,
                                       const std::vector<bool>& valid,
                                       double eps, size_t min_points);

}  // namespace surf

#endif  // SURF_OPT_CLUSTERING_H_
