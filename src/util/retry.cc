#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace surf {

namespace {

/// splitmix64 — the same deterministic mixer the failpoint registry
/// uses, here giving each retry index its own jitter draw.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double UnitDraw(uint64_t seed, uint64_t index) {
  return static_cast<double>(Mix(seed ^ Mix(index)) >> 11) * 0x1.0p-53;
}

}  // namespace

bool IsRetriableStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInternal:
    case StatusCode::kIOError:
    case StatusCode::kTimedOut:
    case StatusCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

double RetryPolicy::BackoffSeconds(int retry_index) const {
  if (retry_index < 0) retry_index = 0;
  double base = initial_backoff_seconds *
                std::pow(backoff_multiplier, static_cast<double>(retry_index));
  base = std::min(base, max_backoff_seconds);
  const double jitter = std::clamp(jitter_fraction, 0.0, 1.0);
  if (jitter > 0.0) {
    const double scale =
        1.0 + jitter * (2.0 * UnitDraw(seed, static_cast<uint64_t>(
                                                 retry_index)) -
                        1.0);
    base *= scale;
  }
  return std::max(base, 0.0);
}

Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& attempt,
                    CancelToken cancel) {
  const int attempts = std::max(policy.max_attempts, 1);
  Status last = Status::Internal("retry loop made no attempt");
  for (int i = 0; i < attempts; ++i) {
    if (cancel.cancelled()) return cancel.ToStatus();
    last = attempt();
    if (last.ok() || !IsRetriableStatus(last)) return last;
    if (i + 1 >= attempts) break;
    // Backoff, polling cancellation in short slices so an armed
    // deadline or explicit Cancel() never waits out a full backoff.
    const double backoff = policy.BackoffSeconds(i);
    const auto wake = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(backoff));
    while (std::chrono::steady_clock::now() < wake) {
      if (cancel.cancelled()) return cancel.ToStatus();
      const auto remaining = wake - std::chrono::steady_clock::now();
      std::this_thread::sleep_for(
          std::min<std::chrono::steady_clock::duration>(
              remaining, std::chrono::milliseconds(5)));
    }
  }
  return last;
}

}  // namespace surf
