// Unit and property tests for region geometry: the [x, l] encoding,
// hyper-rectangle algebra, and the IoU metric (paper Eq. 10).

#include <gtest/gtest.h>

#include "geom/bounds.h"
#include "geom/region.h"
#include "util/rng.h"

namespace surf {
namespace {

Region UnitSquareAt(double cx, double cy, double half) {
  return Region({cx, cy}, {half, half});
}

// ---------------------------------------------------------------- Region

TEST(RegionTest, CornersRoundTrip) {
  const Region r = Region::FromCorners({0.0, 1.0}, {2.0, 5.0});
  EXPECT_DOUBLE_EQ(r.center(0), 1.0);
  EXPECT_DOUBLE_EQ(r.center(1), 3.0);
  EXPECT_DOUBLE_EQ(r.half_length(0), 1.0);
  EXPECT_DOUBLE_EQ(r.half_length(1), 2.0);
  EXPECT_DOUBLE_EQ(r.lo(0), 0.0);
  EXPECT_DOUBLE_EQ(r.hi(1), 5.0);
}

TEST(RegionTest, FlatRoundTrip) {
  const Region r({0.3, 0.7, 0.1}, {0.05, 0.2, 0.15});
  const Region back = Region::FromFlat(r.ToFlat());
  EXPECT_EQ(r, back);
  EXPECT_EQ(r.ToFlat().size(), 6u);
}

TEST(RegionTest, ContainsInclusiveEdges) {
  const Region r({0.5}, {0.25});
  EXPECT_TRUE(r.Contains({0.5}));
  EXPECT_TRUE(r.Contains({0.25}));   // lower edge
  EXPECT_TRUE(r.Contains({0.75}));   // upper edge
  EXPECT_FALSE(r.Contains({0.249}));
  EXPECT_FALSE(r.Contains({0.751}));
}

TEST(RegionTest, ContainsMultiDim) {
  const Region r({0.5, 0.5}, {0.1, 0.2});
  EXPECT_TRUE(r.Contains({0.45, 0.65}));
  EXPECT_FALSE(r.Contains({0.45, 0.75}));
}

TEST(RegionTest, VolumeIsProductOfSides) {
  const Region r({0.0, 0.0}, {0.5, 0.25});
  EXPECT_DOUBLE_EQ(r.Volume(), 1.0 * 0.5);
  EXPECT_DOUBLE_EQ(Region({1.0}, {2.0}).Volume(), 4.0);
}

TEST(RegionTest, ZeroSideGivesZeroVolume) {
  EXPECT_DOUBLE_EQ(Region({0.0, 0.0}, {0.5, 0.0}).Volume(), 0.0);
}

TEST(RegionTest, DegenerateDetection) {
  EXPECT_TRUE(Region({0.0}, {-0.1}).Degenerate());
  EXPECT_FALSE(Region({0.0}, {0.1}).Degenerate());
  EXPECT_TRUE(
      Region({std::numeric_limits<double>::quiet_NaN()}, {0.1}).Degenerate());
  EXPECT_TRUE(
      Region({0.0}, {std::numeric_limits<double>::infinity()}).Degenerate());
}

TEST(RegionTest, OverlapVolumeIdentical) {
  const Region r = UnitSquareAt(0.5, 0.5, 0.25);
  EXPECT_DOUBLE_EQ(r.OverlapVolume(r), r.Volume());
}

TEST(RegionTest, OverlapVolumeDisjoint) {
  const Region a = UnitSquareAt(0.2, 0.2, 0.1);
  const Region b = UnitSquareAt(0.8, 0.8, 0.1);
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 0.0);
}

TEST(RegionTest, OverlapVolumePartial) {
  // [0,1]x[0,1] vs [0.5,1.5]x[0,1]: overlap 0.5.
  const Region a = Region::FromCorners({0.0, 0.0}, {1.0, 1.0});
  const Region b = Region::FromCorners({0.5, 0.0}, {1.5, 1.0});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 0.5);
  EXPECT_DOUBLE_EQ(a.UnionVolume(b), 1.5);
  EXPECT_DOUBLE_EQ(a.IoU(b), 0.5 / 1.5);
}

TEST(RegionTest, TouchingBoxesHaveZeroOverlap) {
  const Region a = Region::FromCorners({0.0}, {1.0});
  const Region b = Region::FromCorners({1.0}, {2.0});
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 0.0);
  EXPECT_DOUBLE_EQ(a.IoU(b), 0.0);
}

TEST(RegionTest, IoUSelfIsOne) {
  const Region r({0.3, 0.4, 0.5}, {0.1, 0.1, 0.2});
  EXPECT_DOUBLE_EQ(r.IoU(r), 1.0);
}

TEST(RegionTest, IoUContained) {
  // Inner box 1/4 the volume of the outer box.
  const Region outer = UnitSquareAt(0.5, 0.5, 0.2);
  const Region inner = UnitSquareAt(0.5, 0.5, 0.1);
  EXPECT_NEAR(outer.IoU(inner), 0.25, 1e-12);
  EXPECT_TRUE(inner.Within(outer));
  EXPECT_FALSE(outer.Within(inner));
}

TEST(RegionTest, IoUZeroVolumeUnion) {
  const Region a({0.5}, {0.0});
  EXPECT_DOUBLE_EQ(a.IoU(a), 0.0);  // degenerate: union volume 0
}

TEST(RegionTest, FlatDistanceMatchesManual) {
  const Region a({0.0, 0.0}, {0.1, 0.1});
  const Region b({0.3, 0.4}, {0.1, 0.1});
  EXPECT_DOUBLE_EQ(a.FlatDistance(b), 0.5);  // 3-4-5 triangle in centers
}

TEST(RegionTest, ClampToBox) {
  Region r({-1.0, 2.0}, {0.9, 0.0001});
  r.ClampTo({0.0, 0.0}, {1.0, 1.0}, 0.01, 0.5);
  EXPECT_DOUBLE_EQ(r.center(0), 0.0);
  EXPECT_DOUBLE_EQ(r.center(1), 1.0);
  EXPECT_DOUBLE_EQ(r.half_length(0), 0.5);
  EXPECT_DOUBLE_EQ(r.half_length(1), 0.01);
}

TEST(RegionTest, ToStringMentionsCenter) {
  const std::string s = Region({0.5}, {0.1}).ToString();
  EXPECT_NE(s.find("center"), std::string::npos);
  EXPECT_NE(s.find("0.5"), std::string::npos);
}

// --------------------------------------------- Property tests (randomized)

class RegionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RegionPropertyTest, IoUProperties) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t d = 1 + rng.UniformInt(4);
  auto random_region = [&] {
    std::vector<double> c(d), l(d);
    for (size_t i = 0; i < d; ++i) {
      c[i] = rng.Uniform();
      l[i] = rng.Uniform(0.01, 0.3);
    }
    return Region(c, l);
  };
  for (int trial = 0; trial < 50; ++trial) {
    const Region a = random_region();
    const Region b = random_region();
    const double iou = a.IoU(b);
    // IoU is symmetric, bounded, and maximal on identity.
    EXPECT_GE(iou, 0.0);
    EXPECT_LE(iou, 1.0 + 1e-12);
    EXPECT_NEAR(iou, b.IoU(a), 1e-12);
    EXPECT_NEAR(a.IoU(a), 1.0, 1e-12);
    // Overlap is bounded by each volume.
    EXPECT_LE(a.OverlapVolume(b), std::min(a.Volume(), b.Volume()) + 1e-12);
    // Union >= max volume.
    EXPECT_GE(a.UnionVolume(b), std::max(a.Volume(), b.Volume()) - 1e-12);
  }
}

TEST_P(RegionPropertyTest, ContainmentImpliesOverlapEqualsInnerVolume) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t d = 1 + rng.UniformInt(3);
    std::vector<double> c(d), l_outer(d), l_inner(d);
    for (size_t i = 0; i < d; ++i) {
      c[i] = rng.Uniform();
      l_outer[i] = rng.Uniform(0.1, 0.3);
      l_inner[i] = l_outer[i] * rng.Uniform(0.2, 0.9);
    }
    const Region outer(c, l_outer);
    const Region inner(c, l_inner);
    EXPECT_TRUE(inner.Within(outer));
    EXPECT_NEAR(outer.OverlapVolume(inner), inner.Volume(), 1e-12);
    EXPECT_NEAR(outer.IoU(inner), inner.Volume() / outer.Volume(), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------- Bounds

TEST(BoundsTest, UnitCube) {
  const Bounds b = Bounds::Unit(3);
  EXPECT_EQ(b.dims(), 3u);
  EXPECT_DOUBLE_EQ(b.lo(0), 0.0);
  EXPECT_DOUBLE_EQ(b.hi(2), 1.0);
  EXPECT_DOUBLE_EQ(b.Extent(1), 1.0);
  EXPECT_DOUBLE_EQ(b.MaxExtent(), 1.0);
}

TEST(BoundsTest, ExtendGrows) {
  Bounds b({0.0}, {1.0});
  b.Extend({2.5});
  EXPECT_DOUBLE_EQ(b.hi(0), 2.5);
  b.Extend({-1.0});
  EXPECT_DOUBLE_EQ(b.lo(0), -1.0);
}

TEST(BoundsTest, ExtendFromEmpty) {
  Bounds b;
  b.Extend({3.0, 4.0});
  EXPECT_EQ(b.dims(), 2u);
  EXPECT_DOUBLE_EQ(b.lo(0), 3.0);
  EXPECT_DOUBLE_EQ(b.hi(1), 4.0);
}

TEST(BoundsTest, ContainsInclusive) {
  const Bounds b({0.0, 0.0}, {1.0, 1.0});
  EXPECT_TRUE(b.Contains({0.0, 1.0}));
  EXPECT_FALSE(b.Contains({1.0001, 0.5}));
}

TEST(BoundsTest, AsRegionCoversBounds) {
  const Bounds b({-2.0, 0.0}, {2.0, 4.0});
  const Region r = b.AsRegion();
  EXPECT_DOUBLE_EQ(r.center(0), 0.0);
  EXPECT_DOUBLE_EQ(r.half_length(1), 2.0);
  EXPECT_DOUBLE_EQ(r.Volume(), 16.0);
}

TEST(BoundsTest, MaxExtentPicksWidest) {
  const Bounds b({0.0, 0.0}, {0.5, 3.0});
  EXPECT_DOUBLE_EQ(b.MaxExtent(), 3.0);
}

}  // namespace
}  // namespace surf
