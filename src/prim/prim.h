#ifndef SURF_PRIM_PRIM_H_
#define SURF_PRIM_PRIM_H_

#include <cstdint>
#include <vector>

#include "geom/region.h"
#include "ml/matrix.h"

namespace surf {

/// \brief PRIM (Patient Rule Induction Method) parameters, after
/// Friedman & Fisher, "Bump hunting in high-dimensional data" (1999) —
/// the paper's fourth comparison method (§V-A iv).
struct PrimParams {
  /// Fraction of in-box points peeled per step (α).
  double peel_alpha = 0.05;
  /// Fraction of points pasted back per expansion attempt.
  double paste_alpha = 0.01;
  /// Minimum box support β0 as a fraction of the dataset (§V-B: 0.01).
  double min_support = 0.01;
  /// Covering: maximum number of boxes to extract.
  size_t max_boxes = 5;
  /// Covering stops once the best remaining box's mean falls below this
  /// (§V-B sets 2 for aggregate statistics). -inf disables.
  double target_threshold = -1e300;
  /// Bottom-up pasting pass after peeling.
  bool enable_pasting = true;
  /// Trajectory selection: rather than the noisy-max mean (which favours
  /// over-peeled slivers), pick the *largest* trajectory box whose mean
  /// reaches best_mean − tolerance × (best_mean − initial_mean). 0
  /// recovers the strict argmax.
  double trajectory_tolerance = 0.10;
};

/// \brief One extracted box.
struct PrimBox {
  Region region;
  /// Mean target value inside the box.
  double mean = 0.0;
  /// Number of (remaining) points inside the box when it was extracted.
  size_t count = 0;
  /// count / N_total.
  double support = 0.0;
};

/// \brief Full PRIM outcome, with work counters for the performance bench.
struct PrimResult {
  std::vector<PrimBox> boxes;
  uint64_t peel_steps = 0;
  uint64_t paste_steps = 0;
};

/// \brief Top-down peeling / bottom-up pasting / covering bump hunter.
///
/// PRIM maximizes E[y | a ∈ B] subject to support(B) ≥ β0 (paper Eq. 11).
/// Peeling repeatedly removes the α-quantile sliver (from either face of
/// any dimension) that leaves the highest target mean; the trajectory box
/// with the best mean at admissible support is then pasted outward while
/// the mean improves. Covering removes the box's points and repeats.
///
/// Note the paper's finding (§V-B): PRIM has no notion of box *volume*,
/// so it cannot chase density-style statistics — feeding a constant
/// target reproduces that failure mode.
class Prim {
 public:
  explicit Prim(PrimParams params) : params_(params) {}

  /// Runs on points `x` (rows × region dims) with per-point targets `y`.
  PrimResult Run(const FeatureMatrix& x, const std::vector<double>& y) const;

  const PrimParams& params() const { return params_; }

 private:
  struct BoxState;

  /// One peeling descent from the full domain over `active` rows.
  /// Returns trajectory-best box (by mean, support >= β0).
  bool FindBox(const FeatureMatrix& x, const std::vector<double>& y,
               const std::vector<size_t>& active, size_t n_total,
               PrimBox* out, uint64_t* peels, uint64_t* pastes) const;

  PrimParams params_;
};

}  // namespace surf

#endif  // SURF_PRIM_PRIM_H_
