#include "util/table_printer.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace surf {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  assert(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddSeparator() {
  rows_.push_back({kSeparatorTag});
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorTag) continue;
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto rule = [&]() {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (size_t i = 0; i < cells.size(); ++i) {
      s += " " + cells[i] + std::string(widths[i] - cells[i].size(), ' ') +
           " |";
    }
    s += "\n";
    return s;
  };

  std::string out = rule() + line(header_) + rule();
  for (const auto& row : rows_) {
    if (row.size() == 1 && row[0] == kSeparatorTag) {
      out += rule();
    } else {
      out += line(row);
    }
  }
  out += rule();
  return out;
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

}  // namespace surf
