#ifndef SURF_NET_JSON_CODEC_H_
#define SURF_NET_JSON_CODEC_H_

/// \file
/// \brief JSON codecs for the wire types of the HTTP front-end.
///
/// The encoders write every field of `MineRequest` (so a decoded request
/// re-encodes to the identical document — the round-trip property the
/// codec tests enforce) and the full `MineResponse` including
/// `SurrogateProvenance`. Doubles survive bit-exactly (`%.17g` via
/// WriteJson); 64-bit fingerprints are carried as hex strings because
/// JSON numbers lose integer precision past 2^53. Decoders treat absent
/// fields as "keep the struct default", reject wrongly-typed or
/// non-finite values with InvalidArgument, and never crash on malformed
/// documents.

#include <functional>
#include <string>

#include "api/api_v2.h"
#include "dist/wire.h"
#include "geom/region.h"
#include "serve/mining_service.h"
#include "util/json.h"
#include "util/status.h"
#include "util/trace.h"

namespace surf {

/// \brief Resolves a dataset's column *name* to its index (−1 when
/// unknown). Lets HTTP clients write `"region_cols": ["x", "y"]` instead
/// of numeric indices; decoding without a resolver accepts indices only.
using ColumnResolver =
    std::function<int(const std::string& dataset, const std::string& column)>;

/// Maps a library Status onto the HTTP status code the front-end answers
/// with (NotFound→404, InvalidArgument→400, AlreadyExists→409,
/// TimedOut→408, FailedPrecondition→412, everything else 500; OK→200).
int HttpStatusFromStatus(const Status& status);

/// Wire name of a status code ("ok", "invalid_argument", ...).
std::string StatusCodeName(StatusCode code);

/// Encodes a Status as `{"code": ..., "message": ...}`.
JsonValue StatusToJson(const Status& status);
/// Decodes a Status encoded by StatusToJson into `*out`; the return
/// value reports decode failure (out-param because StatusOr<Status>
/// would be ambiguous).
Status StatusFromJson(const JsonValue& json, Status* out);

/// Encodes a region as center/half-length vectors plus derived lo/hi
/// corners (the corners are informational; decoding uses center/lengths).
JsonValue RegionToJson(const Region& region);
/// Decodes a region from `{"center": [...], "half_lengths": [...]}`.
StatusOr<Region> RegionFromJson(const JsonValue& json);

/// Encodes provenance; the dataset fingerprint travels as a hex string.
JsonValue ProvenanceToJson(const SurrogateProvenance& provenance);
/// Decodes provenance written by ProvenanceToJson.
StatusOr<SurrogateProvenance> ProvenanceFromJson(const JsonValue& json);

/// Encodes every field of a MineRequest.
JsonValue MineRequestToJson(const MineRequest& request);

/// Decodes a MineRequest. Absent fields keep their defaults. String
/// entries in `statistic.region_cols` / `statistic.value_col` are
/// resolved through `resolver` (InvalidArgument without one).
StatusOr<MineRequest> MineRequestFromJson(
    const JsonValue& json, const ColumnResolver* resolver = nullptr);

/// Encodes a MineResponse. `mode` selects whether the threshold `result`
/// or the `topk` payload is emitted (the other is empty by construction).
JsonValue MineResponseToJson(const MineResponse& response,
                             MineRequest::Mode mode);

/// Decodes a MineResponse written by MineResponseToJson (used by network
/// clients — the load bench and the parity tests). The raw GSO swarm is
/// not carried over the wire and stays empty.
StatusOr<MineResponse> MineResponseFromJson(const JsonValue& json);

// ------------------------------------------------------------- v2 schema
//
// The v2 wire schema mirrors v2::MineRequest: an explicit `api_version`
// plus the named sub-recipes `query`, `search`, `training`, `execution`.
// The v2 decoder is the one entry point surfd routes every mining body
// through: documents with `api_version: 2` decode natively, documents
// with no `api_version` (or 1) decode through the legacy flat schema and
// are lifted — so v1 clients keep working unchanged.

/// Encodes a v2 request in the v2 named-section schema.
JsonValue MineRequestV2ToJson(const v2::MineRequest& request);

/// Decodes a mining request of either schema version, dispatching on the
/// document's `api_version` field (absent = v1 flat schema). Column
/// names resolve through `resolver` as in MineRequestFromJson.
StatusOr<v2::MineRequest> MineRequestV2FromJson(
    const JsonValue& json, const ColumnResolver* resolver = nullptr);

/// Encodes a v2 response: the v1 envelope plus `api_version` (the shared
/// result/topk/report payloads are identical across schema versions).
JsonValue MineResponseV2ToJson(const v2::MineResponse& response,
                               v2::QueryKind kind);

// ------------------------------------------------- distributed evaluation
//
// Wire forms of the coordinator/worker shard-evaluate exchange
// (`POST /v1/shards:evaluate`). Accumulator state travels in the exact
// hex-double form (StatisticAccumulator::ToJson), so a partial decoded
// on the coordinator merges bit-identically to the in-process fold.

/// Encodes a shard-evaluate request: dataset, optional fingerprint (hex
/// string), statistic, partition spec, ascending shard indices, query
/// regions, and the RPC deadline.
JsonValue ShardEvaluateRequestToJson(const dist::ShardEvaluateRequest& request);

/// Decodes a shard-evaluate request. The statistic resolves column names
/// through `resolver` like MineRequestFromJson; rejects non-ascending or
/// out-of-range shard indices.
StatusOr<dist::ShardEvaluateRequest> ShardEvaluateRequestFromJson(
    const JsonValue& json, const ColumnResolver* resolver = nullptr);

/// Encodes a shard-evaluate response: `partials[query][shard]` in the
/// request's query and shard order.
JsonValue ShardEvaluateResponseToJson(
    const dist::ShardEvaluateResponse& response);

/// Decodes a shard-evaluate response; `stat` selects the accumulator
/// wire form (median carries its quantile sketch, the moment kinds their
/// counters).
StatusOr<dist::ShardEvaluateResponse> ShardEvaluateResponseFromJson(
    const JsonValue& json, const Statistic& stat);

// ------------------------------------------------------------------ traces

/// Encodes a completed trace as the response-envelope `trace` block:
/// id, dropped-span count, per-stage wall seconds, and the span tree
/// (start/duration in microseconds relative to the trace epoch).
JsonValue TraceSummaryToJson(const TraceContext& trace);

/// Renders a completed trace in the Chrome trace-event JSON format
/// (the `{"traceEvents": [...]}` object form) — loadable directly in
/// Perfetto or chrome://tracing. Backs `GET /v1/trace/{id}`.
JsonValue TraceToChromeJson(const TraceContext& trace);

}  // namespace surf

#endif  // SURF_NET_JSON_CODEC_H_
