// Tests for the hand-rolled ML substrate: binning, regression trees,
// gradient boosting, ridge regression, k-NN, cross-validation, grid
// search, metrics, and the KDE.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "ml/binning.h"
#include "ml/cv.h"
#include "ml/gbrt.h"
#include "ml/grid_search.h"
#include "ml/kde.h"
#include "ml/knn.h"
#include "ml/linear.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/regressor.h"
#include "ml/tree.h"
#include "util/rng.h"

namespace surf {
namespace {

/// y = f(x) sampled on n random points in [0,1]^d.
void MakeRegressionProblem(size_t n, size_t d, uint64_t seed,
                           double (*fn)(const std::vector<double>&),
                           FeatureMatrix* x, std::vector<double>* y) {
  Rng rng(seed);
  *x = FeatureMatrix(d);
  x->Reserve(n);
  y->clear();
  y->reserve(n);
  std::vector<double> row(d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) row[j] = rng.Uniform();
    x->AddRow(row);
    y->push_back(fn(row));
  }
}

double StepFn(const std::vector<double>& x) { return x[0] > 0.5 ? 5.0 : 1.0; }
double SmoothFn(const std::vector<double>& x) {
  return std::sin(4.0 * x[0]) + 2.0 * x[1] * x[1];
}
double LinearFn(const std::vector<double>& x) {
  return 3.0 + 2.0 * x[0] - 1.5 * x[1];
}

// --------------------------------------------------------------- Matrix

TEST(FeatureMatrixTest, AddAndAccess) {
  FeatureMatrix m(2);
  m.AddRow({1.0, 2.0});
  m.AddRow({3.0, 4.0});
  EXPECT_EQ(m.num_rows(), 2u);
  EXPECT_EQ(m.num_features(), 2u);
  EXPECT_DOUBLE_EQ(m.Get(1, 0), 3.0);
  EXPECT_EQ(m.Row(0), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(m.feature(1).size(), 2u);
}

TEST(FeatureMatrixTest, Gather) {
  FeatureMatrix m(1);
  for (int i = 0; i < 5; ++i) m.AddRow({static_cast<double>(i)});
  const FeatureMatrix g = m.Gather({4, 0, 2});
  ASSERT_EQ(g.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(g.Get(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(g.Get(2, 0), 2.0);
}

// --------------------------------------------------------------- Metrics

TEST(MetricsTest, RmseKnownValue) {
  EXPECT_DOUBLE_EQ(Rmse({1.0, 2.0}, {1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(Rmse({0.0, 0.0}, {3.0, 4.0}), std::sqrt(12.5));
}

TEST(MetricsTest, MaeKnownValue) {
  EXPECT_DOUBLE_EQ(Mae({1.0, -1.0}, {0.0, 0.0}), 1.0);
}

TEST(MetricsTest, R2PerfectAndMeanModel) {
  const std::vector<double> truth{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(R2Score(truth, truth), 1.0);
  EXPECT_DOUBLE_EQ(R2Score({2.0, 2.0, 2.0}, truth), 0.0);  // mean predictor
  EXPECT_LT(R2Score({3.0, 2.0, 1.0}, truth), 0.0);         // worse than mean
}

// -------------------------------------------------------------------- CV

TEST(CvTest, KFoldPartitions) {
  Rng rng(1);
  const auto folds = KFoldSplits(100, 5, &rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<size_t> all_test;
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.test.size(), 100u);
    EXPECT_EQ(fold.test.size(), 20u);
    for (size_t r : fold.test) all_test.insert(r);
    // Train and test are disjoint.
    std::set<size_t> train(fold.train.begin(), fold.train.end());
    for (size_t r : fold.test) EXPECT_EQ(train.count(r), 0u);
  }
  EXPECT_EQ(all_test.size(), 100u);  // every row tested exactly once
}

TEST(CvTest, KFoldUnevenSizes) {
  Rng rng(2);
  const auto folds = KFoldSplits(10, 3, &rng);
  size_t total_test = 0;
  for (const auto& fold : folds) total_test += fold.test.size();
  EXPECT_EQ(total_test, 10u);
}

TEST(CvTest, TrainTestSplitFraction) {
  Rng rng(3);
  const Fold fold = TrainTestSplit(200, 0.25, &rng);
  EXPECT_EQ(fold.test.size(), 50u);
  EXPECT_EQ(fold.train.size(), 150u);
}

// --------------------------------------------------------------- Binning

TEST(BinningTest, FewDistinctValuesGetOwnBins) {
  FeatureMatrix m(1);
  for (double v : {1.0, 1.0, 2.0, 3.0, 3.0}) m.AddRow({v});
  const FeatureBinner binner(m, 256);
  EXPECT_EQ(binner.num_bins(0), 3u);
  EXPECT_EQ(binner.BinIndex(0, 1.0), 0);
  EXPECT_EQ(binner.BinIndex(0, 2.0), 1);
  EXPECT_EQ(binner.BinIndex(0, 3.0), 2);
  EXPECT_EQ(binner.BinIndex(0, -5.0), 0);
  EXPECT_EQ(binner.BinIndex(0, 99.0), 2);
}

TEST(BinningTest, BinsAreMonotone) {
  Rng rng(5);
  FeatureMatrix m(1);
  for (int i = 0; i < 5000; ++i) m.AddRow({rng.Gaussian()});
  const FeatureBinner binner(m, 64);
  EXPECT_LE(binner.num_bins(0), 64u);
  double prev = -10.0;
  uint16_t prev_bin = 0;
  for (int i = 0; i <= 100; ++i) {
    const double v = -3.0 + 0.06 * i;
    const uint16_t b = binner.BinIndex(0, v);
    if (v > prev) EXPECT_GE(b, prev_bin);
    prev = v;
    prev_bin = b;
  }
}

TEST(BinningTest, BinMatrixShape) {
  FeatureMatrix m(2);
  m.AddRow({0.1, 5.0});
  m.AddRow({0.9, -5.0});
  const FeatureBinner binner(m, 16);
  const auto binned = binner.BinMatrix(m);
  ASSERT_EQ(binned.size(), 2u);
  EXPECT_EQ(binned[0].size(), 2u);
}

// ------------------------------------------------------------------ Tree

TEST(TreeTest, FitsStepFunctionExactly) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(500, 1, 7, StepFn, &x, &y);

  // Squared loss from a zero baseline: g = -y, h = 1.
  std::vector<double> grad(y.size()), hess(y.size(), 1.0);
  for (size_t i = 0; i < y.size(); ++i) grad[i] = -y[i];
  std::vector<uint32_t> rows(y.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);

  const FeatureBinner binner(x, 256);
  TreeParams params;
  params.max_depth = 2;
  params.reg_lambda = 0.0;
  RegressionTree tree;
  tree.Fit(binner.Bin(x), binner, grad, hess, &rows, params, nullptr);

  EXPECT_NEAR(tree.Predict({0.2}), 1.0, 0.05);
  EXPECT_NEAR(tree.Predict({0.8}), 5.0, 0.05);
  EXPECT_LE(tree.Depth(), 3u);
}

TEST(TreeTest, DepthZeroIsSingleLeaf) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(100, 1, 8, StepFn, &x, &y);
  std::vector<double> grad(y.size()), hess(y.size(), 1.0);
  double mean = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    grad[i] = -y[i];
    mean += y[i];
  }
  mean /= static_cast<double>(y.size());
  std::vector<uint32_t> rows(y.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);

  const FeatureBinner binner(x, 64);
  TreeParams params;
  params.max_depth = 0;
  params.reg_lambda = 0.0;
  RegressionTree tree;
  tree.Fit(binner.Bin(x), binner, grad, hess, &rows, params, nullptr);
  EXPECT_EQ(tree.num_nodes(), 1u);
  EXPECT_EQ(tree.num_leaves(), 1u);
  EXPECT_NEAR(tree.Predict({0.5}), mean, 1e-9);
}

TEST(TreeTest, RegLambdaShrinksLeaves) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(200, 1, 9, StepFn, &x, &y);
  std::vector<double> grad(y.size()), hess(y.size(), 1.0);
  for (size_t i = 0; i < y.size(); ++i) grad[i] = -y[i];
  std::vector<uint32_t> rows(y.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);
  const FeatureBinner binner(x, 64);

  TreeParams free_params;
  free_params.max_depth = 1;
  free_params.reg_lambda = 0.0;
  TreeParams heavy_params = free_params;
  heavy_params.reg_lambda = 1000.0;

  RegressionTree free_tree, heavy_tree;
  const BinnedMatrix binned = binner.Bin(x);
  std::vector<uint32_t> rows_b = rows;
  free_tree.Fit(binned, binner, grad, hess, &rows, free_params, nullptr);
  heavy_tree.Fit(binned, binner, grad, hess, &rows_b, heavy_params, nullptr);
  EXPECT_LT(std::fabs(heavy_tree.Predict({0.8})),
            std::fabs(free_tree.Predict({0.8})));
}

TEST(TreeTest, SerializeRoundTrip) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(300, 2, 10, SmoothFn, &x, &y);
  std::vector<double> grad(y.size()), hess(y.size(), 1.0);
  for (size_t i = 0; i < y.size(); ++i) grad[i] = -y[i];
  std::vector<uint32_t> rows(y.size());
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = static_cast<uint32_t>(i);
  const FeatureBinner binner(x, 64);
  TreeParams params;
  params.max_depth = 4;
  RegressionTree tree;
  tree.Fit(binner.Bin(x), binner, grad, hess, &rows, params, nullptr);

  std::stringstream ss;
  tree.Serialize(ss);
  const auto restored = RegressionTree::Deserialize(ss);
  ASSERT_TRUE(restored.ok());
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> p{rng.Uniform(), rng.Uniform()};
    EXPECT_DOUBLE_EQ(tree.Predict(p), restored->Predict(p));
  }
}

// ------------------------------------------------------------------ GBRT

TEST(GbrtTest, RejectsBadInput) {
  GradientBoostedTrees model;
  FeatureMatrix empty(2);
  EXPECT_FALSE(model.Fit(empty, {}).ok());

  FeatureMatrix x(1);
  x.AddRow({1.0});
  EXPECT_FALSE(model.Fit(x, {1.0, 2.0}).ok());
  EXPECT_FALSE(model.Fit(x, {std::nan("")}).ok());
}

TEST(GbrtTest, FitsSmoothFunction) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(3000, 2, 12, SmoothFn, &x, &y);
  GbrtParams params;
  params.n_estimators = 150;
  params.max_depth = 5;
  params.learning_rate = 0.1;
  GradientBoostedTrees model(params);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_TRUE(model.trained());
  EXPECT_EQ(model.Name(), "gbrt");

  FeatureMatrix test_x;
  std::vector<double> test_y;
  MakeRegressionProblem(500, 2, 13, SmoothFn, &test_x, &test_y);
  const double rmse = Rmse(model.PredictBatch(test_x), test_y);
  EXPECT_LT(rmse, 0.1);  // target range is roughly [-1, 3]
}

TEST(GbrtTest, TrainCurveDecreases) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(1000, 2, 14, SmoothFn, &x, &y);
  GbrtParams params;
  params.n_estimators = 50;
  GradientBoostedTrees model(params);
  ASSERT_TRUE(model.Fit(x, y).ok());
  const auto& curve = model.train_curve();
  ASSERT_EQ(curve.size(), 50u);
  EXPECT_LT(curve.back(), curve.front() * 0.5);
}

TEST(GbrtTest, MoreTreesFitBetter) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(1500, 2, 15, SmoothFn, &x, &y);
  GbrtParams small;
  small.n_estimators = 5;
  GbrtParams large = small;
  large.n_estimators = 100;
  GradientBoostedTrees a(small), b(large);
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  EXPECT_LT(Rmse(b.PredictBatch(x), y), Rmse(a.PredictBatch(x), y));
}

TEST(GbrtTest, PredictBatchMatchesLoop) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(500, 3, 16, LinearFn, &x, &y);
  GradientBoostedTrees model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  const auto batch = model.PredictBatch(x);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(batch[i], model.Predict(x.Row(i)));
  }
}

TEST(GbrtTest, SubsampleAndColsampleStillLearn) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(2000, 2, 17, SmoothFn, &x, &y);
  GbrtParams params;
  params.subsample = 0.7;
  params.colsample = 0.8;
  params.n_estimators = 100;
  GradientBoostedTrees model(params);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(Rmse(model.PredictBatch(x), y), 0.2);
}

TEST(GbrtTest, EarlyStoppingTruncates) {
  FeatureMatrix x;
  std::vector<double> y;
  // Pure noise: validation error cannot improve, stopping kicks in fast.
  Rng rng(18);
  x = FeatureMatrix(1);
  for (int i = 0; i < 500; ++i) {
    x.AddRow({rng.Uniform()});
    y.push_back(rng.Gaussian());
  }
  GbrtParams params;
  params.n_estimators = 300;
  params.early_stopping_rounds = 5;
  params.validation_fraction = 0.2;
  GradientBoostedTrees model(params);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_LT(model.num_trees(), 300u);
}

TEST(GbrtTest, SaveLoadRoundTrip) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(800, 2, 19, SmoothFn, &x, &y);
  GradientBoostedTrees model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  const std::string path = "/tmp/surf_gbrt_test.model";
  ASSERT_TRUE(model.Save(path).ok());

  auto loaded = GradientBoostedTrees::Load(path);
  ASSERT_TRUE(loaded.ok());
  Rng rng(20);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> p{rng.Uniform(), rng.Uniform()};
    EXPECT_DOUBLE_EQ(model.Predict(p), loaded->Predict(p));
  }
  std::remove(path.c_str());
}

TEST(GbrtTest, LoadRejectsGarbage) {
  const std::string path = "/tmp/surf_gbrt_bad.model";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("not-a-model\n", f);
    fclose(f);
  }
  EXPECT_FALSE(GradientBoostedTrees::Load(path).ok());
  std::remove(path.c_str());
}

TEST(GbrtTest, DeterministicForSeed) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(600, 2, 21, SmoothFn, &x, &y);
  GbrtParams params;
  params.subsample = 0.8;
  params.seed = 5;
  GradientBoostedTrees a(params), b(params);
  ASSERT_TRUE(a.Fit(x, y).ok());
  ASSERT_TRUE(b.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(a.Predict({0.3, 0.7}), b.Predict({0.3, 0.7}));
}

// ----------------------------------------------------------------- Ridge

TEST(RidgeTest, RecoversLinearCoefficients) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(2000, 2, 22, LinearFn, &x, &y);
  RidgeRegression model(1e-6);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_NEAR(model.coefficients()[0], 2.0, 0.01);
  EXPECT_NEAR(model.coefficients()[1], -1.5, 0.01);
  EXPECT_NEAR(model.intercept(), 3.0, 0.02);
  EXPECT_NEAR(model.Predict({0.5, 0.5}), 3.25, 0.01);
  EXPECT_EQ(model.Name(), "ridge");
}

TEST(RidgeTest, HeavyAlphaShrinksTowardMean) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(1000, 2, 23, LinearFn, &x, &y);
  RidgeRegression model(1e9);
  ASSERT_TRUE(model.Fit(x, y).ok());
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  EXPECT_NEAR(model.Predict({0.9, 0.1}), mean, 0.05);
}

TEST(RidgeTest, ConstantFeatureIsHarmless) {
  FeatureMatrix x(2);
  std::vector<double> y;
  Rng rng(24);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.Uniform();
    x.AddRow({v, 7.0});  // second feature constant
    y.push_back(2.0 * v);
  }
  RidgeRegression model(0.001);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_NEAR(model.Predict({0.5, 7.0}), 1.0, 0.05);
}

TEST(CholeskyTest, SolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5].
  std::vector<double> a{4, 2, 2, 3}, b{10, 8}, x;
  ASSERT_TRUE(CholeskySolve(a, b, 2, &x));
  EXPECT_NEAR(x[0], 1.75, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(CholeskyTest, RejectsNonSpd) {
  std::vector<double> a{0, 0, 0, 0}, b{1, 1}, x;
  EXPECT_FALSE(CholeskySolve(a, b, 2, &x));
}

// ------------------------------------------------------------------- KNN

TEST(KnnTest, MemorizesWithKOne) {
  FeatureMatrix x(1);
  std::vector<double> y;
  for (int i = 0; i < 10; ++i) {
    x.AddRow({static_cast<double>(i)});
    y.push_back(static_cast<double>(i * i));
  }
  KnnRegressor model(1);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(model.Predict({3.0}), 9.0);
  EXPECT_DOUBLE_EQ(model.Predict({3.2}), 9.0);  // nearest is 3
  EXPECT_EQ(model.Name(), "knn");
}

TEST(KnnTest, UniformAveragesNeighbors) {
  FeatureMatrix x(1);
  std::vector<double> y{0.0, 10.0, 20.0};
  x.AddRow({0.0});
  x.AddRow({1.0});
  x.AddRow({2.0});
  KnnRegressor model(3, /*distance_weighted=*/false);
  ASSERT_TRUE(model.Fit(x, y).ok());
  EXPECT_DOUBLE_EQ(model.Predict({1.0}), 10.0);
}

TEST(KnnTest, ApproximatesSmoothFunction) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(4000, 2, 25, SmoothFn, &x, &y);
  KnnRegressor model(8);
  ASSERT_TRUE(model.Fit(x, y).ok());
  FeatureMatrix tx;
  std::vector<double> ty;
  MakeRegressionProblem(300, 2, 26, SmoothFn, &tx, &ty);
  EXPECT_LT(Rmse(model.PredictBatch(tx), ty), 0.15);
}

TEST(KnnTest, RejectsZeroK) {
  KnnRegressor model(0);
  FeatureMatrix x(1);
  x.AddRow({1.0});
  EXPECT_FALSE(model.Fit(x, {1.0}).ok());
}

// ----------------------------------------------------------- Grid search

TEST(GridSearchTest, EnumerationCountsCombos) {
  GridSearchSpace space;
  EXPECT_EQ(space.NumCombinations(), 144u);  // the paper's §V-E grid
  const auto combos = space.Enumerate(GbrtParams{});
  EXPECT_EQ(combos.size(), 144u);

  const GridSearchSpace small = GridSearchSpace::Small();
  EXPECT_EQ(small.NumCombinations(), 8u);
}

TEST(GridSearchTest, PicksReasonableParams) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(600, 2, 27, SmoothFn, &x, &y);

  GridSearchSpace space;
  space.learning_rates = {0.1, 0.0001};  // one good, one useless
  space.max_depths = {4};
  space.n_estimators = {60};
  space.reg_lambdas = {1.0};
  GbrtParams base;
  const GridSearchResult result =
      GridSearchCV(x, y, space, base, 3, 31, nullptr);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_DOUBLE_EQ(result.best_params.learning_rate, 0.1);
  EXPECT_LE(result.best_rmse,
            std::min(result.entries[0].mean_rmse,
                     result.entries[1].mean_rmse) +
                1e-12);
}

TEST(GridSearchTest, ParallelMatchesSerial) {
  FeatureMatrix x;
  std::vector<double> y;
  MakeRegressionProblem(400, 2, 28, SmoothFn, &x, &y);
  GridSearchSpace space = GridSearchSpace::Small();
  GbrtParams base;
  base.n_estimators = 30;

  const GridSearchResult serial =
      GridSearchCV(x, y, space, base, 3, 7, nullptr);
  ThreadPool pool(4);
  const GridSearchResult parallel =
      GridSearchCV(x, y, space, base, 3, 7, &pool);
  ASSERT_EQ(serial.entries.size(), parallel.entries.size());
  for (size_t i = 0; i < serial.entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.entries[i].mean_rmse,
                     parallel.entries[i].mean_rmse);
  }
  EXPECT_DOUBLE_EQ(serial.best_rmse, parallel.best_rmse);
}

TEST(GridSearchTest, CrossValidatedRmseIsPositiveForNoisyData) {
  FeatureMatrix x(1);
  std::vector<double> y;
  Rng rng(29);
  for (int i = 0; i < 300; ++i) {
    x.AddRow({rng.Uniform()});
    y.push_back(rng.Gaussian());
  }
  GbrtParams params;
  params.n_estimators = 20;
  double stddev = -1.0;
  const double rmse = CrossValidatedRmse(x, y, params, 3, 11, &stddev);
  EXPECT_GT(rmse, 0.5);
  EXPECT_GE(stddev, 0.0);
}

// ------------------------------------------------------------------- KDE

TEST(KdeTest, StdNormalCdfKnownValues) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalCdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(StdNormalCdf(-1.96), 0.025, 1e-3);
}

TEST(KdeTest, TotalMassIsOne) {
  Rng rng(30);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 500; ++i) points.push_back({rng.Uniform()});
  const Kde kde = Kde::Fit(points);
  // A box covering everything holds ~all probability mass.
  EXPECT_NEAR(kde.RegionMass(Region({0.5}, {100.0})), 1.0, 1e-9);
}

TEST(KdeTest, MassIsMonotoneInBoxSize) {
  Rng rng(31);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back({rng.Uniform(), rng.Uniform()});
  }
  const Kde kde = Kde::Fit(points);
  double prev = 0.0;
  for (double half : {0.05, 0.1, 0.2, 0.4}) {
    const double mass = kde.RegionMass(Region({0.5, 0.5}, {half, half}));
    EXPECT_GE(mass, prev);
    prev = mass;
  }
}

TEST(KdeTest, DensityPeaksAtCluster) {
  Rng rng(32);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 800; ++i) {
    points.push_back({rng.Gaussian(0.3, 0.05), rng.Gaussian(0.7, 0.05)});
  }
  const Kde kde = Kde::Fit(points);
  EXPECT_GT(kde.Density({0.3, 0.7}), kde.Density({0.9, 0.1}) * 10.0);
}

TEST(KdeTest, RegionMassTracksPointFraction) {
  Rng rng(33);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 2000; ++i) points.push_back({rng.Uniform()});
  const Kde kde = Kde::Fit(points);
  // Half the unit interval holds about half the mass.
  EXPECT_NEAR(kde.RegionMass(Region({0.25}, {0.25})), 0.5, 0.06);
}

TEST(KdeTest, FitSampledSubsamples) {
  Rng rng(34);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 5000; ++i) points.push_back({rng.Uniform()});
  Rng sample_rng(35);
  const Kde kde = Kde::FitSampled(points, 300, &sample_rng);
  EXPECT_EQ(kde.num_samples(), 300u);
  EXPECT_NEAR(kde.RegionMass(Region({0.5}, {10.0})), 1.0, 1e-9);
}

TEST(KdeTest, BandwidthsScaleWithSpread) {
  std::vector<std::vector<double>> narrow, wide;
  Rng rng(36);
  for (int i = 0; i < 400; ++i) {
    narrow.push_back({rng.Gaussian(0.0, 0.01)});
    wide.push_back({rng.Gaussian(0.0, 1.0)});
  }
  EXPECT_LT(Kde::Fit(narrow).bandwidths()[0],
            Kde::Fit(wide).bandwidths()[0]);
}

}  // namespace
}  // namespace surf
