#ifndef SURF_SERVE_MINE_JOB_H_
#define SURF_SERVE_MINE_JOB_H_

/// \file
/// \brief Asynchronous mining jobs: future-style handles with progress,
/// cooperative cancellation, and the id-keyed table surfd serves them
/// from.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/cancel.h"
#include "util/trace.h"

namespace surf {

class MiningService;
struct MineRequest;
struct MineResponse;

/// \brief Handle to one in-flight (or finished) mining request.
///
/// Returned by MiningService::Submit. Future-style: `Wait` blocks until
/// the terminal response, `TryGet` polls, `progress` snapshots the live
/// search state, and `Cancel` requests cooperative cancellation — the
/// search stops within one GSO iteration (or one boosting round while
/// training) and completes with Status::Cancelled plus whatever partial
/// regions and provenance the search had. Cancel after completion is a
/// harmless no-op. Handles are shared_ptrs; the job object outlives both
/// the worker that runs it and any table entry that names it.
class MineJob {
 public:
  /// \brief Lifecycle phase of the job.
  enum class Phase {
    /// Accepted, not yet picked up by a worker.
    kQueued,
    /// Resolving the surrogate (training on a miss, joining an in-flight
    /// fit, or hitting the cache).
    kTraining,
    /// Running the GSO search against the resolved model.
    kSearching,
    /// Terminal: the response (success, cancelled, or failed) is ready.
    kDone,
  };

  /// \brief Snapshot of an in-flight job, safe to read concurrently.
  struct Progress {
    /// Current lifecycle phase.
    Phase phase = Phase::kQueued;
    /// Whether Cancel() has been requested (the job may still be
    /// unwinding toward kDone).
    bool cancel_requested = false;
    /// GSO iterations completed so far (0 while training).
    uint64_t iterations = 0;
    /// Iteration budget of the search (0 until the search starts).
    uint64_t max_iterations = 0;
    /// Particles currently holding a valid objective — the live proxy
    /// for regions found so far, before distinct-region extraction.
    uint64_t valid_particles = 0;
    /// Live per-phase elapsed times (seconds): time spent queued before
    /// a worker picked the job up, resolving/training the surrogate, and
    /// searching. A phase not yet entered reads 0; the phase currently
    /// running reads its elapsed-so-far; once the job is done all three
    /// are final. Always recorded (independent of request tracing).
    double queued_seconds = 0.0;
    double training_seconds = 0.0;
    double searching_seconds = 0.0;
  };

  /// Out-of-line so the unique_ptr members see complete types.
  ~MineJob();

  MineJob(const MineJob&) = delete;
  MineJob& operator=(const MineJob&) = delete;

  /// Requests cooperative cancellation. Idempotent; a no-op once the job
  /// is done.
  void Cancel();

  /// Blocks until the job is terminal; returns the response (valid for
  /// the life of the handle).
  const MineResponse& Wait() const;

  /// Non-blocking poll: copies the response into `*out` and returns true
  /// when terminal, returns false (leaving `*out` untouched) otherwise.
  bool TryGet(MineResponse* out) const;

  /// Whether the job reached its terminal state.
  bool done() const;

  /// Live progress snapshot.
  Progress progress() const;

  /// The request this job serves.
  const MineRequest& request() const;

  /// The token the mining core polls; exposed so tests can assert on it.
  CancelToken cancel_token() const { return cancel_.token(); }

  /// When the job completed (steady clock); the epoch default while it
  /// is still running. Drives the job table's age-based retention.
  std::chrono::steady_clock::time_point completed_at() const;

 private:
  friend class MiningService;

  /// Jobs are created by MiningService::Submit/Mine only.
  MineJob(MineRequest request, double deadline_seconds);

  /// Marks the transition into training/searching (worker-side).
  void SetPhase(Phase phase);
  /// Publishes the terminal response and wakes waiters.
  void Complete(MineResponse response);
  /// Moves the response out (single-owner fast path for blocking Mine).
  MineResponse TakeResponse();

  /// Nanoseconds since created_at_ (monotonic offset for the phase
  /// timestamps below).
  int64_t NowNs() const;

  std::unique_ptr<MineRequest> request_;
  CancelSource cancel_;
  SearchProgress search_progress_;
  std::atomic<Phase> phase_{Phase::kQueued};
  /// Span trace for this request; null unless the request asked for
  /// tracing. The worker records into it, RunJob publishes it.
  std::shared_ptr<TraceContext> trace_;
  /// Phase-transition timestamps as nanosecond offsets from creation
  /// (-1 = phase not entered yet). Always stamped — they back the live
  /// per-phase elapsed times in progress() whether or not the request
  /// is traced.
  const std::chrono::steady_clock::time_point created_at_{
      std::chrono::steady_clock::now()};
  std::atomic<int64_t> training_started_ns_{-1};
  std::atomic<int64_t> searching_started_ns_{-1};
  std::atomic<int64_t> finished_ns_{-1};

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::unique_ptr<MineResponse> response_;  // set exactly once, at kDone
  /// Completion timestamp (epoch default = not yet done).
  std::chrono::steady_clock::time_point completed_at_{};
};

/// \brief Thread-safe id-keyed registry of jobs (surfd's job table).
///
/// Ids are monotonic ("job-1", "job-2", ...). Finished jobs are retained
/// for polling, bounded by BOTH a count cap and an age cap: past
/// `max_finished` registered jobs the oldest finished jobs are evicted,
/// and any finished job older than `max_age_seconds` is evicted on the
/// next table mutation (or an explicit Sweep()). Live jobs are never
/// evicted (a table dominated by live jobs may therefore exceed the
/// count cap until they finish).
class JobTable {
 public:
  /// \brief Retention configuration.
  struct Options {
    /// Count cap: past this many registered jobs the oldest finished
    /// jobs are evicted.
    size_t max_finished = 256;
    /// Age cap: finished jobs older than this are evicted on the next
    /// mutation or Sweep() regardless of the count cap (infinity =
    /// count-only retention, the pre-existing behaviour).
    double max_age_seconds = std::numeric_limits<double>::infinity();
  };

  explicit JobTable(Options options) : options_(options) {}

  /// Count-cap-only convenience ctor (legacy signature).
  explicit JobTable(size_t max_finished = 256)
      : JobTable(Options{max_finished,
                         std::numeric_limits<double>::infinity()}) {}

  /// Registers a job and returns its new id.
  std::string Add(std::shared_ptr<MineJob> job);

  /// The job registered under `id`, or null.
  std::shared_ptr<MineJob> Find(const std::string& id) const;

  /// Drops the table's reference to `id` (outstanding handles stay
  /// valid). Returns whether the id existed.
  bool Remove(const std::string& id);

  /// Registered jobs (live + retained finished).
  size_t size() const;

  /// Jobs evicted by retention (count cap or age cap) so far.
  uint64_t evictions() const;

  /// Runs one retention pass now (age evictions otherwise wait for the
  /// next mutation). Returns the number of jobs evicted by this call.
  size_t Sweep();

 private:
  /// Evicts finished jobs past the age cap, then oldest finished jobs
  /// past the count cap. Requires mu_ held.
  void EnforceRetention();

  const Options options_;
  mutable std::mutex mu_;
  uint64_t next_id_ = 1;
  uint64_t evictions_ = 0;
  /// Insertion order, oldest first (for retention eviction).
  std::list<std::string> order_;
  std::unordered_map<std::string,
                     std::pair<std::shared_ptr<MineJob>,
                               std::list<std::string>::iterator>>
      jobs_;
};

}  // namespace surf

#endif  // SURF_SERVE_MINE_JOB_H_
