#ifndef SURF_UTIL_RETRY_H_
#define SURF_UTIL_RETRY_H_

/// \file
/// \brief Cancel-token- and deadline-aware retry with capped jittered
/// exponential backoff.
///
/// `RetryPolicy` is the reusable resilience primitive: training retries
/// in the serving cache today, scatter-gather worker/shard retries in
/// the distributed mode later. The contract:
///
///   * only *retriable* failures are retried (transient codes:
///     Internal, IOError, TimedOut, Unavailable). InvalidArgument,
///     FailedPrecondition, NotFound etc. describe the request, not the
///     attempt, and are returned immediately;
///   * cancellation wins over backoff: the sleep between attempts polls
///     the caller's CancelToken in short slices and unwinds with
///     Cancelled as soon as the token fires or its deadline passes;
///   * backoff is exponential with a multiplicative cap and symmetric
///     jitter drawn from a deterministic per-policy sequence, so tests
///     replay exactly and concurrent retriers decorrelate.

#include <cstdint>
#include <functional>

#include "util/cancel.h"
#include "util/status.h"

namespace surf {

/// \brief Whether a failed attempt is worth repeating: true for the
/// transient codes (Internal, IOError, TimedOut, Unavailable), false
/// for request-shaped errors (InvalidArgument, FailedPrecondition,
/// NotFound, OutOfRange, AlreadyExists) and for Cancelled.
bool IsRetriableStatus(const Status& status);

/// \brief Backoff/attempt configuration for RunWithRetry.
///
/// The default policy (`max_attempts = 1`) performs exactly one attempt
/// and no backoff — retry is opt-in wherever a policy is embedded.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retry).
  int max_attempts = 1;
  /// Backoff before the first retry, seconds.
  double initial_backoff_seconds = 0.05;
  /// Upper bound on any single backoff, seconds.
  double max_backoff_seconds = 2.0;
  /// Growth factor between consecutive backoffs.
  double backoff_multiplier = 2.0;
  /// Symmetric jitter: each backoff is scaled by a factor drawn
  /// uniformly from [1 - jitter_fraction, 1 + jitter_fraction].
  double jitter_fraction = 0.2;
  /// Seed of the deterministic jitter sequence.
  uint64_t seed = 0;

  /// Whether this policy ever retries.
  bool enabled() const { return max_attempts > 1; }

  /// The backoff (seconds) before retry number `retry_index` (0-based),
  /// after capping and jitter. Deterministic in (policy, retry_index).
  double BackoffSeconds(int retry_index) const;
};

/// \brief Runs `attempt` under `policy`.
///
/// Returns the first OK result, or the last failure once attempts are
/// exhausted or a non-retriable failure occurs. Between attempts the
/// backoff sleep polls `cancel` in ~5 ms slices; if the token fires
/// (explicitly or via its armed deadline) the function returns
/// Cancelled without running further attempts.
Status RunWithRetry(const RetryPolicy& policy,
                    const std::function<Status()>& attempt,
                    CancelToken cancel = {});

}  // namespace surf

#endif  // SURF_UTIL_RETRY_H_
