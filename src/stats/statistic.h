#ifndef SURF_STATS_STATISTIC_H_
#define SURF_STATS_STATISTIC_H_

#include <string>
#include <vector>

#include "data/dataset.h"
#include "stats/quantile_sketch.h"

namespace surf {

/// \brief The statistic families supported by the mapping f (paper Def. 2/3:
/// "no restriction to the nature of f — decomposable (COUNT, SUM) or
/// non-decomposable (MEDIAN)").
enum class StatisticKind {
  /// |D| — number of points inside the region ("density" in the paper).
  kCount,
  /// Mean of a value column over points in the region ("aggregate").
  kAverage,
  /// Sum of a value column.
  kSum,
  /// Median of a value column (non-decomposable).
  kMedian,
  /// Sample variance of a value column.
  kVariance,
  /// Fraction of in-region points whose value column equals `label_value`
  /// (the §V-C activity-ratio statistic).
  kLabelRatio,
};

/// Human-readable kind name ("count", "avg", ...).
std::string StatisticKindName(StatisticKind kind);

/// \brief Full description of a statistic task over a dataset.
///
/// `region_cols` selects the dataset columns spanned by the
/// hyper-rectangle; `value_col` supplies the aggregated attribute for every
/// kind except kCount. Per the paper's Def. 2 note, an averaged dimension is
/// *not* part of the box — callers express that by simply excluding it from
/// `region_cols`.
struct Statistic {
  StatisticKind kind = StatisticKind::kCount;
  std::vector<size_t> region_cols;
  int value_col = -1;
  double label_value = 0.0;

  /// Count statistic over the given box columns.
  static Statistic Count(std::vector<size_t> region_cols);
  /// Average of `value_col` over a box on `region_cols`.
  static Statistic Average(std::vector<size_t> region_cols, size_t value_col);
  static Statistic Sum(std::vector<size_t> region_cols, size_t value_col);
  static Statistic MedianOf(std::vector<size_t> region_cols,
                            size_t value_col);
  static Statistic VarianceOf(std::vector<size_t> region_cols,
                              size_t value_col);
  /// Ratio of rows with value == label inside the box.
  static Statistic LabelRatio(std::vector<size_t> region_cols,
                              size_t value_col, double label_value);

  bool needs_value_column() const { return kind != StatisticKind::kCount; }

  /// Number of box dimensions.
  size_t dims() const { return region_cols.size(); }
};

/// \brief Reduces the selected rows of a dataset to the statistic's value.
///
/// Empty selections yield 0 for kCount/kSum/kLabelRatio and NaN for the
/// mean/median/variance kinds — mirroring the paper's observation that f is
/// undefined over point-free regions (§III-B); downstream objectives treat
/// NaN as "invalid region".
double ReduceStatistic(const Dataset& data, const Statistic& stat,
                       const std::vector<size_t>& rows);

/// Streaming variant used by evaluators that never materialize row lists:
/// accumulates count / sum / sum-of-squares / matches and finalizes.
///
/// The accumulator is a mergeable monoid, which is what lets the sharded
/// backend evaluate one region as independent per-shard partials combined
/// at the end: Merge() of partial accumulators in a fixed order equals
/// (bit-for-bit for the integer statistics, and up to floating-point
/// reassociation for the summed ones) a single sequential accumulation.
/// The non-decomposable median rides along through a deterministic
/// mergeable quantile sketch (stats/quantile_sketch.h), exact until the
/// sketch's buffer capacity is exceeded.
class StatisticAccumulator {
 public:
  explicit StatisticAccumulator(const Statistic& stat) : stat_(stat) {}

  /// Adds one in-region row given its value-column entry (ignored for
  /// kCount).
  void Add(double value);

  /// Merges a pre-aggregated block (count + sum + sum of squares +
  /// label matches). Only valid for decomposable kinds.
  void AddBlock(size_t count, double sum, double sum_sq, size_t matches);

  /// Merges another accumulator over the same statistic (the monoid
  /// operation). Valid for every kind, median included; callers that
  /// need determinism fix the merge order (the sharded scan merges in
  /// ascending shard index).
  void Merge(const StatisticAccumulator& other);

  /// Rows accumulated so far.
  size_t count() const { return count_; }

  /// Finalizes the statistic.
  double Finalize() const;

  /// Exact wire form of the partial state: counts as JSON numbers
  /// (always < 2^53 here), the floating sums as hex-encoded IEEE-754
  /// bit patterns, plus the embedded sketch for kMedian. This is what a
  /// remote worker ships back per (shard, query) so the coordinator's
  /// FromJson→Merge fold is bit-identical to the in-process one.
  JsonValue ToJson() const;

  /// Inverse of ToJson. The statistic is not on the wire (both ends
  /// already agree on it through the request); it is re-attached here.
  /// InvalidArgument on schema violations.
  static StatusOr<StatisticAccumulator> FromJson(const JsonValue& json,
                                                 const Statistic& stat);

 private:
  Statistic stat_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  size_t matches_ = 0;
  /// Fed only for kMedian; empty (three pointers) otherwise.
  QuantileSketch sketch_;
};

}  // namespace surf

#endif  // SURF_STATS_STATISTIC_H_
