// Figure 9: GSO convergence — expected objective E[J] vs iterations for
// region-space dimensionality 2d ∈ {2, 4, 6, 8, 10} (d ∈ 1..5) and
// k ∈ {1, 3} GT regions, with the paper's §V-G scaling (L = 50·d,
// r0 = (1 − ½^{1/L})^{1/d}).
//
// The paper's headline: the average number of iterations to convergence
// across settings is ≈ 63, never exceeding 250.

#include <cstdio>

#include "bench_common.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/summary.h"
#include "util/table_printer.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const size_t max_dim = static_cast<size_t>(
      flags.GetInt("max-dim", full ? 5 : 3));

  std::printf("Figure 9 — GSO convergence under the paper's §V-G "
              "scaling\n\n");
  TablePrinter table({"k", "2d", "L", "iters to converge", "E[J] first",
                      "E[J] last", "valid %"});
  CsvWriter csv({"k", "flat_dims", "iterations", "mean_J_last"});
  RunningStats iteration_stats;

  for (size_t k : {1u, 3u}) {
    for (size_t d = 1; d <= max_dim; ++d) {
      SyntheticSpec spec;
      spec.dims = d;
      spec.num_gt_regions = k;
      spec.statistic = SyntheticStatistic::kDensity;
      spec.seed = 60 + d + 10 * k;
      const SyntheticDataset ds = SyntheticGenerator::Generate(spec);

      SurfOptions options;
      options.workload.num_queries = 1500 * d + 1500;
      options.finder.gso = GsoParams::PaperScaled(d);
      options.finder.gso.max_iterations = 250;
      options.finder.gso.convergence_tol_frac = 5e-4;
      options.validate_results = false;
      auto surf = Surf::Build(&ds.data, bench::StatisticFor(ds), options);
      if (!surf.ok()) {
        std::fprintf(stderr, "%s\n", surf.status().ToString().c_str());
        continue;
      }
      const FindResult result = surf->FindRegions(
          bench::ThresholdFor(ds), ThresholdDirection::kAbove);

      const auto& curve = result.gso.history.mean_fitness;
      iteration_stats.Add(static_cast<double>(result.report.iterations));
      table.AddRow(
          {std::to_string(k), std::to_string(2 * d),
           std::to_string(options.finder.gso.num_glowworms),
           std::to_string(result.report.iterations),
           curve.empty() ? "-" : FormatDouble(curve.front(), 2),
           curve.empty() ? "-" : FormatDouble(curve.back(), 2),
           FormatDouble(100.0 * result.report.particle_valid_fraction,
                        0)});
      csv.AddRow({static_cast<double>(k), static_cast<double>(2 * d),
                  static_cast<double>(result.report.iterations),
                  curve.empty() ? 0.0 : curve.back()});
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\naverage iterations to convergence: %.0f "
              "(paper: ~63, max 250)\n",
              iteration_stats.mean());

  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    if (auto st = csv.Write(csv_path); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
