#ifndef SURF_CORE_SURF_H_
#define SURF_CORE_SURF_H_

/// \file
/// \brief The Surf facade: the end-to-end pipeline over one dataset + statistic.

#include <memory>

#include "core/finder.h"
#include "core/surrogate.h"
#include "core/workload.h"
#include "data/dataset.h"
#include "stats/ecdf.h"
#include "stats/evaluator.h"

namespace surf {

/// \brief Which exact back-end serves true-statistic evaluations (workload
/// labelling and result validation).
enum class BackendKind {
  /// Full scan per query — O(N·d) (the paper's cost model).
  kScan,
  /// Uniform grid with pre-aggregated cells.
  kGridIndex,
  /// Median-split k-d tree with subtree aggregates.
  kKdTree,
  /// STR-bulk-loaded aggregate R-tree (§VI's spatial-index substrate).
  kRTree,
};

/// \brief End-to-end configuration of the SuRF pipeline.
struct SurfOptions {
  /// Training-workload recipe (query count, length range, seed).
  WorkloadParams workload;
  /// Surrogate training recipe (GBRT parameters, hypertune, holdout).
  SurrogateTrainOptions surrogate;
  /// Mining-engine knobs (GSO, objective, extraction).
  FinderConfig finder;
  /// Which exact back-end labels the workload and validates results.
  BackendKind backend = BackendKind::kGridIndex;
  /// Row-range shards for the exact back-end. 1 (the default, and the
  /// v1 API's implied value) keeps the single `backend` evaluator;
  /// >= 2 switches to the shard-parallel scan backend partitioned on
  /// the first region column (see MakeEvaluator).
  size_t shards = 1;
  /// Fit the KDE data prior for Eq. 8 guidance.
  bool fit_kde = true;
  /// Sample cap for the KDE fit.
  size_t kde_max_samples = 2000;
  /// Validate reported regions against the true f (Fig. 5's compliance
  /// metric). Costs one back-end evaluation per reported region.
  bool validate_results = true;
};

/// \brief The complete SuRF pipeline over one dataset + statistic:
/// workload generation → surrogate training → (optional) KDE prior →
/// GSO-driven region mining.
///
/// The facade owns the back-end evaluator, the trained surrogate, the KDE,
/// and the finder. Typical use:
///
/// \code
///   auto surf = Surf::Build(&dataset, Statistic::Count({0, 1}), options);
///   auto result = surf->FindRegions(1000.0, ThresholdDirection::kAbove);
///   for (const auto& r : result.regions) { ... }
/// \endcode
class Surf {
 public:
  /// Builds the pipeline: labels `options.workload.num_queries` random
  /// regions with the true statistic, trains the surrogate, and fits the
  /// KDE prior. `data` must outlive the returned object.
  static StatusOr<Surf> Build(const Dataset* data, Statistic statistic,
                              const SurfOptions& options,
                              ThreadPool* pool = nullptr);

  /// Mines regions whose statistic exceeds (or undercuts) `threshold`.
  FindResult FindRegions(double threshold,
                         ThresholdDirection direction) const;

  /// Empirical CDF of the statistic over `n` random regions (Eq. 5's F_Y;
  /// used to pick quantile thresholds like the crimes experiment's Q3).
  Ecdf SampleStatisticEcdf(size_t n, uint64_t seed) const;

  /// The trained surrogate f̂.
  const Surrogate& surrogate() const { return surrogate_; }
  /// The exact back-end evaluator (true f).
  const RegionEvaluator& evaluator() const { return *evaluator_; }
  /// The solution space the finder roams.
  const RegionSolutionSpace& space() const { return space_; }
  /// The configured mining engine.
  const SurfFinder& finder() const { return *finder_; }
  /// The options the pipeline was built with.
  const SurfOptions& options() const { return options_; }

 private:
  Surf() = default;

  const Dataset* data_ = nullptr;
  SurfOptions options_;
  std::unique_ptr<RegionEvaluator> evaluator_;
  Surrogate surrogate_;
  std::unique_ptr<Kde> kde_;
  RegionSolutionSpace space_;
  std::unique_ptr<SurfFinder> finder_;
};

/// Constructs the requested exact back-end over a dataset.
std::unique_ptr<RegionEvaluator> MakeEvaluator(BackendKind kind,
                                               const Dataset* data,
                                               const Statistic& statistic);

/// Shard-aware overload: `shards` <= 1 defers to the single-evaluator
/// form above (which, like every classic backend, keeps a raw pointer
/// into `data` — the dataset must outlive the evaluator); >= 2 builds
/// a ShardedScanEvaluator over `shards` row-range shards
/// range-partitioned on the statistic's first region column (`kind`
/// then only describes what a single-shard request would have used —
/// the sharded scan is its own exact backend, and it alone owns
/// materialized shard chunks instead of referencing `data`).
std::unique_ptr<RegionEvaluator> MakeEvaluator(BackendKind kind,
                                               const Dataset* data,
                                               const Statistic& statistic,
                                               size_t shards);

/// Fits the Eq. 8 KDE data prior over a dataset's region columns on a
/// bounded subsample (deterministic for a given seed). Shared by
/// Surf::Build, the serving layer, and the CLI's saved-model path.
/// A fired `cancel` token short-circuits to an empty (0-dim) KDE; callers
/// that care check the token afterwards.
Kde FitDataKde(const Dataset& data, const std::vector<size_t>& region_cols,
               size_t max_samples, uint64_t seed, CancelToken cancel = {});

}  // namespace surf

#endif  // SURF_CORE_SURF_H_
