#ifndef SURF_ML_CV_H_
#define SURF_ML_CV_H_

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace surf {

/// \brief One train/validation index split.
struct Fold {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// K-fold cross-validation splits over `n` rows (shuffled).
/// Requires 2 <= k <= n.
std::vector<Fold> KFoldSplits(size_t n, size_t k, Rng* rng);

/// Single shuffled train/test split with `test_fraction` of rows held out.
Fold TrainTestSplit(size_t n, double test_fraction, Rng* rng);

}  // namespace surf

#endif  // SURF_ML_CV_H_
