#ifndef SURF_UTIL_STRING_UTIL_H_
#define SURF_UTIL_STRING_UTIL_H_

#include <string>
#include <vector>

namespace surf {

/// Splits `s` on `delim` (keeps empty fields).
std::vector<std::string> SplitString(const std::string& s, char delim);

/// Strips leading/trailing ASCII whitespace.
std::string TrimString(const std::string& s);

/// Formats a double with `precision` significant-looking decimals,
/// trimming trailing zeros ("1.30" -> "1.3", "2.00" -> "2").
std::string FormatDouble(double v, int precision = 4);

/// Joins strings with a separator.
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace surf

#endif  // SURF_UTIL_STRING_UTIL_H_
