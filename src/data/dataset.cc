#include "data/dataset.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/csv.h"
#include "util/failpoint.h"

namespace surf {

Dataset::Dataset(std::vector<std::string> column_names)
    : column_names_(std::move(column_names)),
      columns_(column_names_.size()) {}

int Dataset::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void Dataset::AddRow(const std::vector<double>& row) {
  assert(row.size() == num_cols());
  for (size_t i = 0; i < row.size(); ++i) columns_[i].push_back(row[i]);
  ++num_rows_;
}

void Dataset::Reserve(size_t rows) {
  for (auto& col : columns_) col.reserve(rows);
}

std::vector<double> Dataset::Row(size_t row) const {
  assert(row < num_rows_);
  std::vector<double> out(num_cols());
  for (size_t c = 0; c < num_cols(); ++c) out[c] = columns_[c][row];
  return out;
}

Bounds Dataset::ComputeBounds(const std::vector<size_t>& cols) const {
  assert(num_rows_ > 0);
  std::vector<double> lo(cols.size()), hi(cols.size());
  for (size_t j = 0; j < cols.size(); ++j) {
    const auto& col = columns_[cols[j]];
    auto [mn, mx] = std::minmax_element(col.begin(), col.end());
    lo[j] = *mn;
    hi[j] = *mx;
  }
  return Bounds(std::move(lo), std::move(hi));
}

Dataset Dataset::Sample(size_t n, Rng* rng) const {
  Dataset out(column_names_);
  if (n >= num_rows_) return *this;
  std::vector<size_t> idx(num_rows_);
  std::iota(idx.begin(), idx.end(), 0);
  rng->Shuffle(&idx);
  out.Reserve(n);
  for (size_t i = 0; i < n; ++i) out.AddRow(Row(idx[i]));
  return out;
}

Dataset Dataset::InflateTo(size_t target_rows, double jitter,
                           Rng* rng) const {
  assert(num_rows_ > 0);
  Dataset out = *this;
  out.Reserve(target_rows);
  while (out.num_rows() < target_rows) {
    const size_t src = rng->UniformInt(num_rows_);
    std::vector<double> row = Row(src);
    for (auto& v : row) v += rng->Gaussian(0.0, jitter);
    out.AddRow(row);
  }
  return out;
}

Status Dataset::SaveCsv(const std::string& path) const {
  CsvTable table;
  table.header = column_names_;
  table.rows.reserve(num_rows_);
  for (size_t r = 0; r < num_rows_; ++r) table.rows.push_back(Row(r));
  return WriteCsv(path, table);
}

StatusOr<Dataset> Dataset::LoadCsv(const std::string& path) {
  SURF_FAILPOINT("data.load_csv");
  auto table = ReadCsv(path);
  if (!table.ok()) return table.status();
  Dataset ds(table->header);
  ds.Reserve(table->num_rows());
  for (const auto& row : table->rows) ds.AddRow(row);
  return ds;
}

}  // namespace surf
