#ifndef SURF_ML_BINNING_H_
#define SURF_ML_BINNING_H_

#include <cstdint>
#include <vector>

#include "ml/matrix.h"

namespace surf {

/// \brief Quantile feature binning for histogram-based tree training
/// (the strategy XGBoost's `hist` mode and LightGBM use).
///
/// Bin edges are per-feature quantiles computed from (a subsample of) the
/// training data; training then operates on uint16 bin ids, making each
/// node's split search O(rows + bins) per feature instead of requiring a
/// per-node sort.
class FeatureBinner {
 public:
  /// Computes at most `max_bins` bins per feature (min 2, max 4096).
  FeatureBinner(const FeatureMatrix& x, size_t max_bins = 256);

  size_t num_features() const { return edges_.size(); }

  /// Number of bins actually materialized for feature j (distinct-value
  /// features can have fewer than max_bins).
  size_t num_bins(size_t j) const { return edges_[j].size() + 1; }

  /// Bin id of raw value v on feature j, in [0, num_bins(j)).
  uint16_t BinIndex(size_t j, double v) const;

  /// Upper edge of bin b on feature j — the split threshold a tree stores
  /// so prediction can work on raw doubles. `b < num_bins(j)-1`.
  double BinUpperEdge(size_t j, size_t b) const { return edges_[j][b]; }

  /// Bins an entire matrix (column-major, same layout as the input).
  std::vector<std::vector<uint16_t>> BinMatrix(const FeatureMatrix& x) const;

 private:
  // edges_[j] is the sorted list of inner edges; value <= edges_[j][b]
  // falls into bin b, values above every edge fall into the last bin.
  std::vector<std::vector<double>> edges_;
};

}  // namespace surf

#endif  // SURF_ML_BINNING_H_
