#include "net/metrics.h"

#include <cmath>
#include <cstdio>
#include <mutex>

#include "util/trace.h"

namespace surf {

namespace {

void AppendMetric(std::string* out, const std::string& line) {
  out->append(line);
  out->push_back('\n');
}

std::string FormatSeconds(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

void ServerMetrics::BumpRouteCounter(const std::string& route,
                                     int status_code) {
  const std::pair<std::string, int> key{route, status_code};
  {
    // Fast path: the pair has been seen before (every request after the
    // first per route/status), so a shared lock suffices and recorders
    // never serialize on each other.
    std::shared_lock<std::shared_mutex> lock(routes_mu_);
    auto it = requests_.find(key);
    if (it != requests_.end()) {
      it->second->value.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(routes_mu_);
  auto [it, inserted] = requests_.try_emplace(key);
  if (inserted) it->second = std::make_unique<Counter>();
  it->second->value.fetch_add(1, std::memory_order_relaxed);
}

void ServerMetrics::RecordRequest(const std::string& route, int status_code,
                                  double seconds) {
  BumpRouteCounter(route, status_code);
  size_t bucket = kLatencyBucketsSeconds.size();  // +Inf slot
  for (size_t i = 0; i < kLatencyBucketsSeconds.size(); ++i) {
    if (seconds <= kLatencyBucketsSeconds[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  const double ns = seconds * 1e9;
  latency_sum_ns_.fetch_add(
      ns > 0.0 ? static_cast<uint64_t>(std::llround(ns)) : 0,
      std::memory_order_relaxed);
  latency_count_.fetch_add(1, std::memory_order_relaxed);
}

double ServerMetrics::LatencyQuantileSeconds(double q) const {
  const uint64_t count = latency_count_.load(std::memory_order_relaxed);
  if (count == 0) return 0.0;
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      return i < kLatencyBucketsSeconds.size() ? kLatencyBucketsSeconds[i]
                                               : kLatencyBucketsSeconds.back();
    }
  }
  return kLatencyBucketsSeconds.back();
}

std::string ServerMetrics::RenderPrometheus(const CacheFigures& cache,
                                            const ServiceFigures& service)
    const {
  std::string out;
  out.reserve(4096);

  AppendMetric(&out,
               "# HELP surf_http_requests_total Requests served, by route "
               "and status code.");
  AppendMetric(&out, "# TYPE surf_http_requests_total counter");
  {
    std::unique_lock<std::shared_mutex> lock(routes_mu_);
    for (const auto& [key, counter] : requests_) {
      AppendMetric(
          &out,
          "surf_http_requests_total{route=\"" + key.first + "\",code=\"" +
              std::to_string(key.second) + "\"} " +
              std::to_string(counter->value.load(std::memory_order_relaxed)));
    }
  }

  AppendMetric(&out,
               "# HELP surf_http_request_duration_seconds End-to-end "
               "handler latency.");
  AppendMetric(&out, "# TYPE surf_http_request_duration_seconds histogram");
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kLatencyBucketsSeconds.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    AppendMetric(&out, "surf_http_request_duration_seconds_bucket{le=\"" +
                           FormatSeconds(kLatencyBucketsSeconds[i]) + "\"} " +
                           std::to_string(cumulative));
  }
  cumulative += buckets_.back().load(std::memory_order_relaxed);
  AppendMetric(&out,
               "surf_http_request_duration_seconds_bucket{le=\"+Inf\"} " +
                   std::to_string(cumulative));
  AppendMetric(
      &out,
      "surf_http_request_duration_seconds_sum " +
          FormatSeconds(
              static_cast<double>(
                  latency_sum_ns_.load(std::memory_order_relaxed)) *
              1e-9));
  AppendMetric(&out,
               "surf_http_request_duration_seconds_count " +
                   std::to_string(
                       latency_count_.load(std::memory_order_relaxed)));

  AppendMetric(&out,
               "# HELP surf_http_inflight_requests Requests currently "
               "inside a handler.");
  AppendMetric(&out, "# TYPE surf_http_inflight_requests gauge");
  AppendMetric(&out, "surf_http_inflight_requests " +
                         std::to_string(inflight_.load()));

  // Per-stage pipeline latency, fed by the trace layer: one histogram
  // per mining stage, same buckets as the request histogram above so
  // the two decompositions line up.
  AppendMetric(&out,
               "# HELP surf_stage_seconds Mining pipeline stage latency "
               "(spans recorded by traced requests), by stage.");
  AppendMetric(&out, "# TYPE surf_stage_seconds histogram");
  const StageStats& stages = StageStats::Instance();
  for (int s = 1; s < kNumTraceStages; ++s) {
    const TraceStage stage = static_cast<TraceStage>(s);
    const StageStats::Snapshot snap = stages.Get(stage);
    const std::string label(TraceStageName(stage));
    uint64_t stage_cumulative = 0;
    for (size_t i = 0; i < StageStats::kBucketBoundsSeconds.size(); ++i) {
      stage_cumulative += snap.buckets[i];
      AppendMetric(
          &out,
          "surf_stage_seconds_bucket{stage=\"" + label + "\",le=\"" +
              FormatSeconds(StageStats::kBucketBoundsSeconds[i]) + "\"} " +
              std::to_string(stage_cumulative));
    }
    stage_cumulative += snap.buckets.back();
    AppendMetric(&out, "surf_stage_seconds_bucket{stage=\"" + label +
                           "\",le=\"+Inf\"} " +
                           std::to_string(stage_cumulative));
    AppendMetric(&out, "surf_stage_seconds_sum{stage=\"" + label + "\"} " +
                           FormatSeconds(snap.sum_seconds));
    AppendMetric(&out, "surf_stage_seconds_count{stage=\"" + label + "\"} " +
                           std::to_string(snap.count));
  }

  AppendMetric(&out,
               "# HELP surf_cache_requests_total Surrogate-cache lookups, "
               "by outcome.");
  AppendMetric(&out, "# TYPE surf_cache_requests_total counter");
  AppendMetric(&out, "surf_cache_requests_total{outcome=\"hit\"} " +
                         std::to_string(cache.hits));
  AppendMetric(&out, "surf_cache_requests_total{outcome=\"miss\"} " +
                         std::to_string(cache.misses));
  AppendMetric(&out, "surf_cache_requests_total{outcome=\"degraded\"} " +
                         std::to_string(cache.degraded_serves));
  AppendMetric(&out, "surf_cache_requests_total{outcome=\"negative\"} " +
                         std::to_string(cache.negative_hits));
  AppendMetric(&out, "surf_cache_requests_total{outcome=\"rejected\"} " +
                         std::to_string(cache.breaker_rejections));

  AppendMetric(&out,
               "# HELP surf_cache_training_failures_total Surrogate "
               "training attempts that failed (before any fallback).");
  AppendMetric(&out, "# TYPE surf_cache_training_failures_total counter");
  AppendMetric(&out, "surf_cache_training_failures_total " +
                         std::to_string(cache.training_failures));

  AppendMetric(&out,
               "# HELP surf_cache_evictions_total Surrogate-cache "
               "evictions, by reason.");
  AppendMetric(&out, "# TYPE surf_cache_evictions_total counter");
  AppendMetric(&out, "surf_cache_evictions_total{reason=\"capacity\"} " +
                         std::to_string(cache.evictions));
  AppendMetric(&out, "surf_cache_evictions_total{reason=\"stale\"} " +
                         std::to_string(cache.stale_evictions));

  AppendMetric(&out, "# HELP surf_cache_entries Resident cache entries.");
  AppendMetric(&out, "# TYPE surf_cache_entries gauge");
  AppendMetric(&out, "surf_cache_entries " + std::to_string(cache.entries));

  const uint64_t lookups = cache.hits + cache.misses;
  AppendMetric(&out,
               "# HELP surf_cache_hit_ratio Fraction of lookups served by "
               "a resident surrogate.");
  AppendMetric(&out, "# TYPE surf_cache_hit_ratio gauge");
  AppendMetric(
      &out, "surf_cache_hit_ratio " +
                FormatSeconds(lookups == 0 ? 0.0
                                           : static_cast<double>(cache.hits) /
                                                 static_cast<double>(lookups)));

  AppendMetric(&out,
               "# HELP surf_shard_scan_total Sharded-evaluator shard "
               "classifications, by action (pruned = disjoint skip, "
               "block_merged = answered from summaries, scanned = full "
               "mask scan).");
  AppendMetric(&out, "# TYPE surf_shard_scan_total counter");
  AppendMetric(&out, "surf_shard_scan_total{action=\"pruned\"} " +
                         std::to_string(service.shard_evals_pruned));
  AppendMetric(&out, "surf_shard_scan_total{action=\"block_merged\"} " +
                         std::to_string(service.shard_evals_block_merged));
  AppendMetric(&out, "surf_shard_scan_total{action=\"scanned\"} " +
                         std::to_string(service.shard_evals_scanned));

  if (!service.accel_backend.empty()) {
    AppendMetric(&out,
                 "# HELP surf_accel_backend Active SIMD kernel backend "
                 "(info-style gauge: the selected backend reads 1).");
    AppendMetric(&out, "# TYPE surf_accel_backend gauge");
    AppendMetric(&out, "surf_accel_backend{backend=\"" +
                           service.accel_backend + "\"} 1");
  }

  AppendMetric(&out,
               "# HELP surf_jobs_tracked Jobs registered in the job table "
               "(live + retained finished).");
  AppendMetric(&out, "# TYPE surf_jobs_tracked gauge");
  AppendMetric(&out,
               "surf_jobs_tracked " + std::to_string(service.jobs_tracked));

  AppendMetric(&out,
               "# HELP surf_jobs_evicted_total Finished jobs evicted from "
               "the job table by retention (count or age cap).");
  AppendMetric(&out, "# TYPE surf_jobs_evicted_total counter");
  AppendMetric(&out, "surf_jobs_evicted_total " +
                         std::to_string(service.jobs_evicted));

  if (service.has_dist) {
    AppendMetric(&out,
                 "# HELP surf_dist_shard_retries_total Shard groups "
                 "re-homed onto another worker after an RPC failure.");
    AppendMetric(&out, "# TYPE surf_dist_shard_retries_total counter");
    AppendMetric(&out, "surf_dist_shard_retries_total " +
                           std::to_string(service.dist_shard_retries));

    AppendMetric(&out,
                 "# HELP surf_dist_worker_unhealthy Whether a configured "
                 "worker is currently marked unhealthy (1 = failing, "
                 "awaiting /healthz readmission).");
    AppendMetric(&out, "# TYPE surf_dist_worker_unhealthy gauge");
    for (const auto& worker : service.dist_workers) {
      AppendMetric(&out, "surf_dist_worker_unhealthy{worker=\"" +
                             worker.endpoint + "\"} " +
                             std::string(worker.healthy ? "0" : "1"));
    }

    AppendMetric(&out,
                 "# HELP surf_dist_worker_request_seconds Coordinator-"
                 "observed shard-evaluate RPC latency, by worker.");
    AppendMetric(&out, "# TYPE surf_dist_worker_request_seconds histogram");
    for (const auto& worker : service.dist_workers) {
      const std::string label = "worker=\"" + worker.endpoint + "\"";
      uint64_t worker_cumulative = 0;
      for (size_t i = 0; i < kLatencyBucketsSeconds.size(); ++i) {
        worker_cumulative += worker.buckets[i];
        AppendMetric(&out,
                     "surf_dist_worker_request_seconds_bucket{" + label +
                         ",le=\"" + FormatSeconds(kLatencyBucketsSeconds[i]) +
                         "\"} " + std::to_string(worker_cumulative));
      }
      worker_cumulative += worker.buckets.back();
      AppendMetric(&out, "surf_dist_worker_request_seconds_bucket{" + label +
                             ",le=\"+Inf\"} " +
                             std::to_string(worker_cumulative));
      AppendMetric(&out, "surf_dist_worker_request_seconds_sum{" + label +
                             "} " +
                             FormatSeconds(worker.latency_sum_seconds));
      AppendMetric(&out, "surf_dist_worker_request_seconds_count{" + label +
                             "} " + std::to_string(worker.latency_count));
    }
  }

  if (service.has_transport) {
    AppendMetric(&out,
                 "# HELP surf_http_worker_exceptions_total Handler "
                 "invocations that threw (answered 500).");
    AppendMetric(&out, "# TYPE surf_http_worker_exceptions_total counter");
    AppendMetric(&out, "surf_http_worker_exceptions_total " +
                           std::to_string(service.worker_exceptions));

    AppendMetric(&out,
                 "# HELP surf_http_write_failures_total Responses whose "
                 "socket write failed (peer gone or write deadline).");
    AppendMetric(&out, "# TYPE surf_http_write_failures_total counter");
    AppendMetric(&out, "surf_http_write_failures_total " +
                           std::to_string(service.write_failures));

    AppendMetric(&out,
                 "# HELP surf_http_requests_shed_total Queued requests "
                 "abandoned by load shedding (answered 503).");
    AppendMetric(&out, "# TYPE surf_http_requests_shed_total counter");
    AppendMetric(&out, "surf_http_requests_shed_total " +
                           std::to_string(service.requests_shed));

    AppendMetric(&out,
                 "# HELP surf_http_tenant_throttled_total Requests "
                 "answered 429 by a tenant rate limit.");
    AppendMetric(&out, "# TYPE surf_http_tenant_throttled_total counter");
    AppendMetric(&out, "surf_http_tenant_throttled_total " +
                           std::to_string(service.tenant_throttled));

    AppendMetric(&out,
                 "# HELP surf_http_tenant_over_quota_total Requests "
                 "answered 429 by a tenant concurrency quota.");
    AppendMetric(&out, "# TYPE surf_http_tenant_over_quota_total counter");
    AppendMetric(&out, "surf_http_tenant_over_quota_total " +
                           std::to_string(service.tenant_over_quota));

    AppendMetric(&out,
                 "# HELP surf_http_batch_served_total Requests served on "
                 "the batch-class workers.");
    AppendMetric(&out, "# TYPE surf_http_batch_served_total counter");
    AppendMetric(&out, "surf_http_batch_served_total " +
                           std::to_string(service.batch_served));

    AppendMetric(&out,
                 "# HELP surf_mine_coalesced_total /v1/mine requests "
                 "answered by sharing an identical in-flight computation.");
    AppendMetric(&out, "# TYPE surf_mine_coalesced_total counter");
    AppendMetric(&out, "surf_mine_coalesced_total " +
                           std::to_string(service.mine_coalesced));
  }
  return out;
}

}  // namespace surf
