#include "opt/gso.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace surf {

GsoParams GsoParams::PaperScaled(size_t data_dims) {
  GsoParams params;
  const size_t d = std::max<size_t>(1, data_dims);
  params.num_glowworms = 50 * d;
  // r0 = (1 − (1/2)^{1/L})^{1/d} — the paper's §V-G radius, derived from
  // the expected edge length needed to cover a 1/L fraction of unit
  // volume (Hastie et al. Eq. 2.24). The result is already a fraction of
  // the (unit) domain, so it maps onto initial_radius_frac.
  const double L = static_cast<double>(params.num_glowworms);
  params.initial_radius_frac = std::pow(
      1.0 - std::pow(0.5, 1.0 / L), 1.0 / static_cast<double>(d));
  params.sensor_radius_frac =
      std::min(1.0, 1.5 * params.initial_radius_frac);
  return params;
}

double GsoResult::ValidFraction() const {
  if (valid.empty()) return 0.0;
  size_t n = 0;
  for (bool v : valid) n += v ? 1 : 0;
  return static_cast<double>(n) / static_cast<double>(valid.size());
}

GsoResult GlowwormSwarmOptimizer::Optimize(const FitnessFn& fitness,
                                           const RegionSolutionSpace& space,
                                           const Kde* kde, CancelToken cancel,
                                           SearchProgress* progress,
                                           TraceContext* trace) const {
  assert(fitness != nullptr);
  return Optimize(ToBatchFitness(fitness), space, kde, std::move(cancel),
                  progress, trace);
}

GsoResult GlowwormSwarmOptimizer::Optimize(const BatchFitnessFn& fitness,
                                           const RegionSolutionSpace& space,
                                           const Kde* kde, CancelToken cancel,
                                           SearchProgress* progress,
                                           TraceContext* trace) const {
  assert(fitness != nullptr);
  const size_t L = std::max<size_t>(2, params_.num_glowworms);
  const double diagonal = space.FlatDiagonal();
  const double r0 = params_.initial_radius_frac * diagonal;
  const double rs = std::max(r0, params_.sensor_radius_frac * diagonal);
  const double step = params_.step_frac * diagonal;
  const double conv_tol = params_.convergence_tol_frac * diagonal;

  Rng rng(params_.seed);
  GsoResult result;
  result.particles.reserve(L);
  for (size_t i = 0; i < L; ++i) result.particles.push_back(space.Sample(&rng));

  // KDE-seeded initialization: move a fraction of the particle centers
  // onto (jittered) data locations so the swarm starts with members in
  // populated space. Half-lengths keep their uniform draw.
  if (kde != nullptr && params_.kde_seeded_fraction > 0.0 &&
      kde->dims() == space.dims()) {
    const size_t seeded = std::min(
        L, static_cast<size_t>(params_.kde_seeded_fraction *
                               static_cast<double>(L)));
    for (size_t i = 0; i < seeded; ++i) {
      const std::vector<double> p = kde->DrawPoint(&rng);
      Region& particle = result.particles[i];
      for (size_t j = 0; j < space.dims(); ++j) {
        particle.set_center(j, p[j]);
        // Seeded particles start with near-maximal boxes: a large box
        // anchored on data captures the surrounding mass, giving an
        // immediately-valid vantage point the swarm can shrink from.
        // Smaller-length seeding leaves most high-dimensional seeds too
        // small to catch their neighbourhood's statistic.
        particle.set_half_length(
            j, rng.Uniform(0.9 * space.max_half_length,
                           space.max_half_length));
      }
      space.Clamp(&particle);
    }
  }

  std::vector<double> luciferin(L, params_.initial_luciferin);
  std::vector<double> radius(L, r0);
  result.fitness.assign(L, 0.0);
  result.valid.assign(L, false);

  // Cached KDE region mass per particle, refreshed after each move. Only
  // maintained when Eq. 8 guidance is on — the per-particle RegionMass
  // integral dominates iteration cost otherwise.
  const bool kde_guided = kde != nullptr && params_.kde_mass_guidance;
  std::vector<double> kde_mass(L, 1.0);
  auto refresh_mass = [&](size_t i) {
    if (kde_guided) {
      kde_mass[i] = std::max(1e-12, kde->RegionMass(result.particles[i]));
    }
  };
  for (size_t i = 0; i < L; ++i) refresh_mass(i);

  std::vector<size_t> neighbors;
  std::vector<double> weights;
  size_t quiet_iters = 0;
  if (progress != nullptr) {
    progress->max_iterations.store(params_.max_iterations,
                                   std::memory_order_relaxed);
  }

  // One trace span per block of iterations (not per iteration — a long
  // swarm would flood the trace). Stage kNone: the finder's "search"
  // span already accounts this time in the stage histograms.
  constexpr size_t kItersPerSpan = 10;
  int32_t iters_span = -1;
  size_t iters_span_start = 0;
  auto close_iters_span = [&](size_t next_t) {
    if (iters_span < 0) return;
    trace->AddAttr(iters_span, "iterations",
                   std::to_string(iters_span_start) + ".." +
                       std::to_string(next_t == 0 ? 0 : next_t - 1));
    trace->EndSpan(iters_span);
    iters_span = -1;
  };

  for (size_t t = 0; t < params_.max_iterations; ++t) {
    if (cancel.cancelled()) {
      result.cancelled = true;
      break;
    }
    if (trace != nullptr && t % kItersPerSpan == 0) {
      close_iters_span(t);
      iters_span = trace->BeginSpan("gso_iterations", TraceStage::kNone);
      iters_span_start = t;
    }
    // Phase 1 — luciferin update (Eq. 6). Invalid particles decay only:
    // γ·Ĵ is withheld where the objective is undefined, so glowworms in
    // the white (constraint-violating) areas lose attraction.
    //
    // Deviation from the raw Eq. 6: the reinforcement is the particle's
    // margin over the iteration's *worst valid* fitness rather than Ĵ
    // itself. Raw Ĵ breaks down when the objective is negative (e.g. the
    // size-rewarding c < 0 regime): invalid particles, which only decay
    // from their initial luciferin, would then outshine valid ones and
    // attract the swarm into undefined space. The shift is scale-free and
    // preserves the within-iteration ordering Eq. 7 depends on.
    double fitness_sum = 0.0;
    size_t valid_count = 0;
    double worst_valid = std::numeric_limits<double>::infinity();
    const std::vector<FitnessValue> evals = fitness(result.particles);
    result.objective_evaluations += L;
    for (size_t i = 0; i < L; ++i) {
      const FitnessValue& fv = evals[i];
      result.fitness[i] = fv.value;
      result.valid[i] = fv.valid;
      if (fv.valid) {
        worst_valid = std::min(worst_valid, fv.value);
        fitness_sum += fv.value;
        ++valid_count;
      }
    }
    for (size_t i = 0; i < L; ++i) {
      luciferin[i] = (1.0 - params_.luciferin_decay) * luciferin[i];
      if (result.valid[i]) {
        // Margin over the worst valid particle, plus a small validity
        // bonus so even the dimmest valid particle eventually outshines
        // the decaying invalid ones.
        luciferin[i] += params_.luciferin_gain *
                        (result.fitness[i] - worst_valid + 0.1);
      }
      luciferin[i] = std::max(0.0, luciferin[i]);
    }
    result.history.mean_fitness.push_back(
        valid_count > 0 ? fitness_sum / static_cast<double>(valid_count)
                        : 0.0);
    result.history.valid_fraction.push_back(
        static_cast<double>(valid_count) / static_cast<double>(L));

    // Phase 2 — probabilistic movement toward brighter neighbours.
    double movement_sum = 0.0;
    std::vector<Region> next = result.particles;
    for (size_t i = 0; i < L; ++i) {
      neighbors.clear();
      weights.clear();
      for (size_t j = 0; j < L; ++j) {
        if (j == i || luciferin[j] <= luciferin[i]) continue;
        const double dist =
            result.particles[i].FlatDistance(result.particles[j]);
        if (dist <= radius[i]) {
          neighbors.push_back(j);
          double w = luciferin[j] - luciferin[i];  // Eq. 7 numerator
          if (kde_guided) w *= kde_mass[j];  // Eq. 8 re-weighting
          weights.push_back(w);
        }
      }

      // Adaptive neighborhood radius.
      const double nd = static_cast<double>(params_.desired_neighbors) -
                        static_cast<double>(neighbors.size());
      radius[i] = std::clamp(radius[i] + params_.radius_beta * nd * r0,
                             0.05 * r0, rs);

      if (neighbors.empty()) {
        // Isolated particle: stays put (paper behaviour), unless the
        // exploration extension re-seeds stuck invalid particles.
        if (!result.valid[i] && params_.exploration_restart_prob > 0.0 &&
            rng.Bernoulli(params_.exploration_restart_prob)) {
          next[i] = space.Sample(&rng);
          movement_sum += result.particles[i].FlatDistance(next[i]);
        }
        continue;
      }
      const size_t pick = rng.Categorical(weights);
      if (pick >= neighbors.size()) continue;  // all weights zero
      const Region& target = result.particles[neighbors[pick]];

      // Move a fixed step along the flat-space direction to the target.
      const Region& self = result.particles[i];
      const double dist = self.FlatDistance(target);
      if (dist <= 1e-12) continue;
      const double scale = std::min(1.0, step / dist);
      Region moved = self;
      for (size_t k = 0; k < space.dims(); ++k) {
        moved.set_center(
            k, self.center(k) + scale * (target.center(k) - self.center(k)));
        moved.set_half_length(
            k, self.half_length(k) +
                   scale * (target.half_length(k) - self.half_length(k)));
      }
      space.Clamp(&moved);
      movement_sum += self.FlatDistance(moved);
      next[i] = std::move(moved);
    }
    for (size_t i = 0; i < L; ++i) {
      if (!(next[i] == result.particles[i])) {
        result.particles[i] = std::move(next[i]);
        refresh_mass(i);
      }
    }

    const double mean_movement = movement_sum / static_cast<double>(L);
    result.history.mean_movement.push_back(mean_movement);
    result.iterations_run = t + 1;
    if (progress != nullptr) {
      progress->iterations.store(result.iterations_run,
                                 std::memory_order_relaxed);
      progress->valid_particles.store(valid_count, std::memory_order_relaxed);
    }

    if (params_.convergence_tol_frac > 0.0 && t > 0) {
      if (mean_movement < conv_tol) {
        if (++quiet_iters >= params_.convergence_window) {
          result.converged = true;
          break;
        }
      } else {
        quiet_iters = 0;
      }
    }
  }

  close_iters_span(result.iterations_run);

  // Final fitness refresh so reported values match final positions.
  const std::vector<FitnessValue> final_evals = fitness(result.particles);
  result.objective_evaluations += L;
  for (size_t i = 0; i < L; ++i) {
    result.fitness[i] = final_evals[i].value;
    result.valid[i] = final_evals[i].valid;
  }
  result.luciferin = std::move(luciferin);
  return result;
}

}  // namespace surf
