#ifndef SURF_CORE_SURROGATE_H_
#define SURF_CORE_SURROGATE_H_

#include <memory>
#include <string>

#include "core/workload.h"
#include "ml/gbrt.h"
#include "ml/grid_search.h"
#include "ml/regressor.h"
#include "opt/objective.h"
#include "util/thread_pool.h"

namespace surf {

/// \brief How to train a surrogate (paper §IV, §V-E).
struct SurrogateTrainOptions {
  /// Base GBRT parameters (used directly when hypertune == false, and as
  /// the non-swept defaults of the grid search otherwise).
  GbrtParams gbrt;
  /// Run GridSearchCV over `grid` before the final fit (§V-E's 144-combo
  /// sweep; expensive — the paper's Fig. 6 quantifies by how much).
  bool hypertune = false;
  GridSearchSpace grid;
  size_t cv_folds = 3;
  /// Fraction of the workload held out to report the out-of-sample RMSE
  /// (the error Fig. 11 correlates with IoU).
  double test_fraction = 0.2;
  uint64_t seed = 21;
};

/// \brief Quality/cost record of a trained surrogate.
struct SurrogateMetrics {
  double train_rmse = 0.0;
  double test_rmse = 0.0;
  double train_seconds = 0.0;
  size_t num_train_examples = 0;
  /// Winning hyper-parameters (== the requested ones when not hypertuned).
  GbrtParams chosen_params;
  bool hypertuned = false;
};

/// \brief A trained surrogate model f̂ ≈ f (paper Def. 3 / §IV).
///
/// Wraps any `Regressor` over the [x, l] feature encoding. The default
/// training path fits the GBRT (the paper's XGBoost stand-in); the generic
/// path accepts ridge/k-NN models for the surrogate-class ablation.
class Surrogate {
 public:
  Surrogate() = default;

  /// Trains the default GBRT surrogate on a workload. When
  /// `options.hypertune` is set, runs GridSearchCV first (parallelized
  /// over `pool` if provided).
  static StatusOr<Surrogate> Train(const RegionWorkload& workload,
                                   const SurrogateTrainOptions& options,
                                   ThreadPool* pool = nullptr);

  /// Trains a caller-supplied regressor instead (ablation path). The
  /// model must be unfitted; ownership transfers.
  static StatusOr<Surrogate> TrainWithModel(
      std::unique_ptr<Regressor> model, const RegionWorkload& workload,
      double test_fraction, uint64_t seed);

  /// ŷ = f̂(x, l).
  double Predict(const Region& region) const;

  /// Batched ŷ for a whole population of regions: one feature-matrix fill
  /// plus one blocked PredictBatch instead of per-region feature vectors
  /// and tree walks. Element i corresponds to regions[i].
  std::vector<double> EvaluateMany(const std::vector<Region>& regions) const;

  /// Folds freshly observed region evaluations into the deployed model by
  /// warm-start boosting (`extra_trees` additional rounds fitted to the
  /// current residuals on the new batch). This is the "models will be
  /// trained once and successively used" deployment story (§V-D) extended
  /// with cheap periodic refreshes — no full retrain. GBRT models only.
  Status Update(const RegionWorkload& fresh_workload, size_t extra_trees);

  /// Adapter feeding the optimization objective.
  StatisticFn AsStatisticFn() const;

  /// Batched adapter: lets optimizers score an entire swarm per call.
  BatchStatisticFn AsBatchStatisticFn() const;

  const SurrogateMetrics& metrics() const { return metrics_; }
  const RegionSolutionSpace& space() const { return space_; }
  const Statistic& statistic() const { return statistic_; }
  size_t dims() const { return space_.dims(); }
  bool trained() const { return model_ != nullptr && model_->trained(); }
  const Regressor& model() const { return *model_; }

  /// Persistence (GBRT models only; other regressors return
  /// FailedPrecondition).
  Status Save(const std::string& path) const;
  static StatusOr<Surrogate> Load(const std::string& path);

 private:
  std::shared_ptr<Regressor> model_;
  RegionSolutionSpace space_;
  Statistic statistic_;
  SurrogateMetrics metrics_;
};

}  // namespace surf

#endif  // SURF_CORE_SURROGATE_H_
