#ifndef SURF_CORE_SURF_H_
#define SURF_CORE_SURF_H_

#include <memory>

#include "core/finder.h"
#include "core/surrogate.h"
#include "core/workload.h"
#include "data/dataset.h"
#include "stats/ecdf.h"
#include "stats/evaluator.h"

namespace surf {

/// \brief Which exact back-end serves true-statistic evaluations (workload
/// labelling and result validation).
enum class BackendKind {
  /// Full scan per query — O(N·d) (the paper's cost model).
  kScan,
  /// Uniform grid with pre-aggregated cells.
  kGridIndex,
  /// Median-split k-d tree with subtree aggregates.
  kKdTree,
  /// STR-bulk-loaded aggregate R-tree (§VI's spatial-index substrate).
  kRTree,
};

/// \brief End-to-end configuration of the SuRF pipeline.
struct SurfOptions {
  WorkloadParams workload;
  SurrogateTrainOptions surrogate;
  FinderConfig finder;
  BackendKind backend = BackendKind::kGridIndex;
  /// Fit the KDE data prior for Eq. 8 guidance.
  bool fit_kde = true;
  size_t kde_max_samples = 2000;
  /// Validate reported regions against the true f (Fig. 5's compliance
  /// metric). Costs one back-end evaluation per reported region.
  bool validate_results = true;
};

/// \brief The complete SuRF pipeline over one dataset + statistic:
/// workload generation → surrogate training → (optional) KDE prior →
/// GSO-driven region mining.
///
/// The facade owns the back-end evaluator, the trained surrogate, the KDE,
/// and the finder. Typical use:
///
/// \code
///   auto surf = Surf::Build(&dataset, Statistic::Count({0, 1}), options);
///   auto result = surf->FindRegions(1000.0, ThresholdDirection::kAbove);
///   for (const auto& r : result.regions) { ... }
/// \endcode
class Surf {
 public:
  /// Builds the pipeline: labels `options.workload.num_queries` random
  /// regions with the true statistic, trains the surrogate, and fits the
  /// KDE prior. `data` must outlive the returned object.
  static StatusOr<Surf> Build(const Dataset* data, Statistic statistic,
                              const SurfOptions& options,
                              ThreadPool* pool = nullptr);

  /// Mines regions whose statistic exceeds (or undercuts) `threshold`.
  FindResult FindRegions(double threshold,
                         ThresholdDirection direction) const;

  /// Empirical CDF of the statistic over `n` random regions (Eq. 5's F_Y;
  /// used to pick quantile thresholds like the crimes experiment's Q3).
  Ecdf SampleStatisticEcdf(size_t n, uint64_t seed) const;

  const Surrogate& surrogate() const { return surrogate_; }
  const RegionEvaluator& evaluator() const { return *evaluator_; }
  const RegionSolutionSpace& space() const { return space_; }
  const SurfFinder& finder() const { return *finder_; }
  const SurfOptions& options() const { return options_; }

 private:
  Surf() = default;

  const Dataset* data_ = nullptr;
  SurfOptions options_;
  std::unique_ptr<RegionEvaluator> evaluator_;
  Surrogate surrogate_;
  std::unique_ptr<Kde> kde_;
  RegionSolutionSpace space_;
  std::unique_ptr<SurfFinder> finder_;
};

/// Constructs the requested exact back-end over a dataset.
std::unique_ptr<RegionEvaluator> MakeEvaluator(BackendKind kind,
                                               const Dataset* data,
                                               const Statistic& statistic);

}  // namespace surf

#endif  // SURF_CORE_SURF_H_
