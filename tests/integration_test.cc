// Integration tests: miniature versions of the paper's experiments wired
// end-to-end — the four comparison methods on planted ground truth, the
// qualitative real-data scenarios, and cross-cutting invariants.

#include <gtest/gtest.h>

#include <cmath>

#include "core/surf.h"
#include "data/activity_sim.h"
#include "data/crimes_sim.h"
#include "data/synthetic.h"
#include "prim/prim.h"
#include "util/summary.h"

namespace surf {
namespace {

/// Average best-IoU of found regions against each GT region (the paper's
/// §V-B protocol: per GT region, the best matching proposal).
double AverageIoU(const std::vector<Region>& found,
                  const std::vector<Region>& gt) {
  if (found.empty() || gt.empty()) return 0.0;
  double total = 0.0;
  for (const auto& g : gt) {
    double best = 0.0;
    for (const auto& f : found) best = std::max(best, f.IoU(g));
    total += best;
  }
  return total / static_cast<double>(gt.size());
}

TEST(IntegrationTest, SurfVsTrueFunctionAgreement) {
  // The paper's headline claim (§V-B): SuRF ≈ f+GlowWorm in IoU.
  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 21;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);

  ScanEvaluator eval(&ds.data, Statistic::Count({0, 1}));
  WorkloadParams wparams;
  wparams.num_queries = 5000;
  const RegionWorkload workload =
      GenerateWorkload(eval, ds.data.ComputeBounds({0, 1}), wparams);
  auto surrogate = Surrogate::Train(workload, SurrogateTrainOptions{});
  ASSERT_TRUE(surrogate.ok());

  FinderConfig config;
  config.gso.num_glowworms = 120;
  config.gso.max_iterations = 100;

  // SuRF arm: surrogate-backed.
  SurfFinder surf_finder(surrogate->AsStatisticFn(), workload.space,
                         config);
  const FindResult surf_result =
      surf_finder.Find(1000.0, ThresholdDirection::kAbove);

  // f+GlowWorm arm: the true function drives the same engine.
  SurfFinder true_finder(
      [&eval](const Region& r) { return eval.Evaluate(r); },
      workload.space, config);
  const FindResult true_result =
      true_finder.Find(1000.0, ThresholdDirection::kAbove);

  auto regions_of = [](const FindResult& r) {
    std::vector<Region> out;
    for (const auto& f : r.regions) out.push_back(f.region);
    return out;
  };
  const double surf_iou = AverageIoU(regions_of(surf_result),
                                     ds.gt_regions);
  const double true_iou = AverageIoU(regions_of(true_result),
                                     ds.gt_regions);
  EXPECT_GT(surf_iou, 0.35);
  EXPECT_GT(true_iou, 0.35);
  // The surrogate arm is allowed to trail the oracle arm, but not by much
  // (the paper reports them near-identical).
  EXPECT_GT(surf_iou, true_iou - 0.25);
}

TEST(IntegrationTest, NaiveBaselineFindsGtButExaminesGrid) {
  SyntheticSpec spec;
  spec.dims = 1;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 22;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  ScanEvaluator eval(&ds.data, Statistic::Count({0}));

  ObjectiveConfig oconfig;
  oconfig.threshold = 1000.0;
  oconfig.direction = ThresholdDirection::kAbove;
  const RegionObjective objective(
      [&eval](const Region& r) { return eval.Evaluate(r); }, oconfig);

  const RegionSolutionSpace space = RegionSolutionSpace::ForBounds(
      ds.data.ComputeBounds({0}), 0.01, 0.2);
  NaiveSearchParams nparams;
  nparams.centers_per_dim = 12;
  nparams.sizes_per_dim = 6;
  const NaiveSearch naive(nparams);
  const NaiveSearchResult result = naive.Run(objective, space);
  EXPECT_EQ(result.examined, 72u);

  const auto kept = SelectDistinctRegions(result.viable, 0.3, 4);
  ASSERT_FALSE(kept.empty());
  double best_iou = 0.0;
  for (const auto& k : kept) {
    best_iou = std::max(best_iou, k.region.IoU(ds.gt_regions[0]));
  }
  EXPECT_GT(best_iou, 0.3);
}

TEST(IntegrationTest, PrimFindsAggregateButNotDensity) {
  // Aggregate setting: PRIM is strong (paper Fig. 3 top-left).
  SyntheticSpec agg_spec;
  agg_spec.dims = 2;
  agg_spec.num_gt_regions = 1;
  agg_spec.statistic = SyntheticStatistic::kAggregate;
  agg_spec.seed = 23;
  const SyntheticDataset agg = SyntheticGenerator::Generate(agg_spec);

  FeatureMatrix x(2);
  std::vector<double> y;
  for (size_t r = 0; r < agg.data.num_rows(); ++r) {
    x.AddRow({agg.data.Get(r, 0), agg.data.Get(r, 1)});
    y.push_back(agg.data.Get(r, 2));
  }
  PrimParams pparams;
  pparams.max_boxes = 1;
  const PrimResult prim_result = Prim(pparams).Run(x, y);
  ASSERT_FALSE(prim_result.boxes.empty());
  EXPECT_GT(prim_result.boxes[0].region.IoU(agg.gt_regions[0]), 0.3);

  // Density setting: constant target — PRIM has nothing to optimize
  // (paper Fig. 3 right column, §V-B discussion).
  SyntheticSpec den_spec = agg_spec;
  den_spec.statistic = SyntheticStatistic::kDensity;
  const SyntheticDataset den = SyntheticGenerator::Generate(den_spec);
  FeatureMatrix dx(2);
  std::vector<double> dy(den.data.num_rows(), 1.0);
  for (size_t r = 0; r < den.data.num_rows(); ++r) {
    dx.AddRow({den.data.Get(r, 0), den.data.Get(r, 1)});
  }
  const PrimResult den_result = Prim(pparams).Run(dx, dy);
  const double den_iou =
      den_result.boxes.empty()
          ? 0.0
          : den_result.boxes[0].region.IoU(den.gt_regions[0]);
  EXPECT_LT(den_iou, 0.35);
}

TEST(IntegrationTest, MultimodalCaptureOfThreeRegions) {
  SyntheticSpec spec;
  spec.dims = 1;
  spec.num_gt_regions = 3;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 24;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);

  SurfOptions options;
  options.workload.num_queries = 4000;
  options.finder.gso.num_glowworms = 150;
  options.finder.gso.max_iterations = 120;
  auto surf = Surf::Build(&ds.data, Statistic::Count({0}), options);
  ASSERT_TRUE(surf.ok());
  const FindResult result =
      surf->FindRegions(1000.0, ThresholdDirection::kAbove);

  // Every planted region must be matched by some proposal.
  size_t matched = 0;
  for (const auto& gt : ds.gt_regions) {
    for (const auto& f : result.regions) {
      if (f.region.IoU(gt) > 0.25) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_GE(matched, 2u);  // at least 2 of 3 under the quick settings
}

TEST(IntegrationTest, CrimesComplianceIsHigh) {
  CrimesSimSpec spec;
  spec.num_points = 20000;
  const CrimesDataset crimes = SimulateCrimes(spec);
  SurfOptions options;
  options.workload.num_queries = 5000;
  options.finder.gso.num_glowworms = 120;
  options.finder.gso.max_iterations = 100;
  auto surf = Surf::Build(&crimes.data, Statistic::Count({0, 1}), options);
  ASSERT_TRUE(surf.ok());

  const Ecdf ecdf = surf->SampleStatisticEcdf(1000, 4);
  const FindResult result =
      surf->FindRegions(ecdf.Quantile(0.75), ThresholdDirection::kAbove);
  ASSERT_FALSE(result.regions.empty());
  // Paper: 100 % of proposed regions complied; allow one slip.
  EXPECT_GE(result.report.true_compliance, 0.7);
}

TEST(IntegrationTest, ActivityRareRegionIsFound) {
  ActivitySimSpec spec;
  spec.num_points = 15000;
  const ActivityDataset activity = SimulateActivity(spec);
  const double stand =
      static_cast<double>(static_cast<int>(Activity::kStanding));
  SurfOptions options;
  options.workload.num_queries = 6000;
  options.finder.gso.num_glowworms = 150;
  options.finder.gso.max_iterations = 120;
  options.finder.c = 2.0;
  auto surf = Surf::Build(&activity.data,
                          Statistic::LabelRatio({0, 1, 2}, 3, stand),
                          options);
  ASSERT_TRUE(surf.ok());

  // The request is a rare event under the region-statistic CDF.
  const Ecdf ecdf = surf->SampleStatisticEcdf(2000, 5);
  EXPECT_LT(ecdf.Exceedance(0.3), 0.2);

  const FindResult result =
      surf->FindRegions(0.3, ThresholdDirection::kAbove);
  ASSERT_FALSE(result.regions.empty());
  EXPECT_GE(result.report.true_compliance, 0.5);
}

TEST(IntegrationTest, SurrogateEvaluationsAreDataFree) {
  // SuRF's mining must not touch the dataset: the evaluator serves the
  // workload and validation only.
  SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 26;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  SurfOptions options;
  options.workload.num_queries = 2000;
  options.validate_results = false;  // no validation passes either
  options.finder.gso.num_glowworms = 80;
  options.finder.gso.max_iterations = 60;
  auto surf = Surf::Build(&ds.data, Statistic::Count({0, 1}), options);
  ASSERT_TRUE(surf.ok());
  const uint64_t evals_after_build = surf->evaluator().evaluation_count();
  surf->FindRegions(1000.0, ThresholdDirection::kAbove);
  EXPECT_EQ(surf->evaluator().evaluation_count(), evals_after_build);
}

TEST(IntegrationTest, LogObjectiveBeatsRatioObjectiveOnIsolation) {
  // §V-F: under Eq. 2 the swarm can settle in constraint-violating space;
  // Eq. 4 marks it invalid. Compare the fraction of final particles that
  // actually satisfy the constraint.
  SyntheticSpec spec;
  spec.dims = 1;
  spec.num_gt_regions = 3;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 27;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  ScanEvaluator eval(&ds.data, Statistic::Count({0}));
  WorkloadParams wparams;
  wparams.num_queries = 3000;
  const RegionWorkload workload =
      GenerateWorkload(eval, ds.data.ComputeBounds({0}), wparams);
  auto surrogate = Surrogate::Train(workload, SurrogateTrainOptions{});
  ASSERT_TRUE(surrogate.ok());

  auto run_with = [&](bool use_log) {
    FinderConfig config;
    config.use_log_objective = use_log;
    config.gso.num_glowworms = 100;
    config.gso.max_iterations = 80;
    SurfFinder finder(surrogate->AsStatisticFn(), workload.space, config);
    const FindResult result =
        finder.Find(1000.0, ThresholdDirection::kAbove);
    // Fraction of final particles whose *surrogate* statistic satisfies
    // the constraint.
    size_t good = 0;
    for (const auto& p : result.gso.particles) {
      if (surrogate->Predict(p) > 1000.0) ++good;
    }
    return static_cast<double>(good) /
           static_cast<double>(result.gso.particles.size());
  };
  const double log_fraction = run_with(true);
  const double ratio_fraction = run_with(false);
  EXPECT_GE(log_fraction, ratio_fraction - 0.05);
  EXPECT_GT(log_fraction, 0.5);
}

TEST(IntegrationTest, HigherDimensionsDegradeGracefully) {
  // The paper's Fig. 3 trend: IoU decreases with d but stays nonzero.
  double prev_iou = 1.0;
  for (size_t d : {1u, 3u}) {
    SyntheticSpec spec;
    spec.dims = d;
    spec.num_gt_regions = 1;
    spec.statistic = SyntheticStatistic::kDensity;
    spec.seed = 28 + d;
    const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
    SurfOptions options;
    options.workload.num_queries = 3000 + 3000 * d;
    options.finder.gso = GsoParams::PaperScaled(d);
    options.finder.gso.max_iterations = 120;
    std::vector<size_t> cols;
    for (size_t j = 0; j < d; ++j) cols.push_back(j);
    auto surf = Surf::Build(&ds.data, Statistic::Count(cols), options);
    ASSERT_TRUE(surf.ok());
    const FindResult result =
        surf->FindRegions(1000.0, ThresholdDirection::kAbove);
    double best = 0.0;
    for (const auto& r : result.regions) {
      best = std::max(best, r.region.IoU(ds.gt_regions[0]));
    }
    EXPECT_GT(best, 0.1) << "d=" << d;
    prev_iou = best;
  }
  (void)prev_iou;
}

}  // namespace
}  // namespace surf
