#include "core/surrogate.h"

#include <cassert>
#include <fstream>

#include "ml/cv.h"
#include "ml/metrics.h"
#include "util/stopwatch.h"

namespace surf {

namespace {

/// Gathers a fold into matrix/target form.
void GatherFold(const RegionWorkload& workload,
                const std::vector<size_t>& rows, FeatureMatrix* x,
                std::vector<double>* y) {
  *x = workload.features.Gather(rows);
  y->clear();
  y->reserve(rows.size());
  for (size_t r : rows) y->push_back(workload.targets[r]);
}

}  // namespace

StatusOr<Surrogate> Surrogate::Train(const RegionWorkload& workload,
                                     const SurrogateTrainOptions& options,
                                     ThreadPool* pool, CancelToken cancel,
                                     TraceContext* trace) {
  if (workload.size() == 0) {
    return Status::InvalidArgument("empty workload");
  }
  if (cancel.cancelled()) return cancel.ToStatus();
  // The training stage span lives here, not in the serving layer, so
  // library callers get the same stage accounting as surfd requests.
  TraceSpan training_span(trace, "training", TraceStage::kTraining);
  Stopwatch timer;

  GbrtParams params = options.gbrt;
  bool hypertuned = false;
  if (options.hypertune) {
    TraceSpan span(trace, "hypertune");
    const GridSearchResult grid =
        GridSearchCV(workload.features, workload.targets, options.grid,
                     options.gbrt, options.cv_folds, options.seed, pool);
    params = grid.best_params;
    hypertuned = true;
  }

  Surrogate surrogate;
  auto model = std::make_unique<GradientBoostedTrees>(params);
  model->SetCancelToken(cancel);
  model->SetTrace(trace);

  // Holdout split for out-of-sample RMSE reporting.
  Rng rng(options.seed);
  Fold split = TrainTestSplit(workload.size(),
                              options.test_fraction > 0.0
                                  ? options.test_fraction
                                  : 0.2,
                              &rng);
  FeatureMatrix train_x;
  std::vector<double> train_y;
  GatherFold(workload, split.train, &train_x, &train_y);
  SURF_RETURN_IF_ERROR(model->Fit(train_x, train_y));
  // The token and trace are per-request state; a later warm-start
  // continuation of this model must not observe them.
  model->SetCancelToken(CancelToken());
  model->SetTrace(nullptr);

  SurrogateMetrics metrics;
  metrics.hypertuned = hypertuned;
  metrics.chosen_params = params;
  metrics.num_train_examples = split.train.size();
  metrics.train_rmse = Rmse(model->PredictBatch(train_x), train_y);
  {
    FeatureMatrix test_x;
    std::vector<double> test_y;
    GatherFold(workload, split.test, &test_x, &test_y);
    metrics.test_rmse = Rmse(model->PredictBatch(test_x), test_y);
  }
  metrics.train_seconds = timer.ElapsedSeconds();

  surrogate.model_ = std::move(model);
  surrogate.space_ = workload.space;
  surrogate.statistic_ = workload.statistic;
  surrogate.metrics_ = metrics;
  return surrogate;
}

StatusOr<Surrogate> Surrogate::TrainWithModel(
    std::unique_ptr<Regressor> model, const RegionWorkload& workload,
    double test_fraction, uint64_t seed) {
  if (workload.size() == 0) {
    return Status::InvalidArgument("empty workload");
  }
  if (model == nullptr) {
    return Status::InvalidArgument("null model");
  }
  Stopwatch timer;
  Rng rng(seed);
  Fold split = TrainTestSplit(
      workload.size(), test_fraction > 0.0 ? test_fraction : 0.2, &rng);
  FeatureMatrix train_x;
  std::vector<double> train_y;
  GatherFold(workload, split.train, &train_x, &train_y);
  SURF_RETURN_IF_ERROR(model->Fit(train_x, train_y));

  Surrogate surrogate;
  SurrogateMetrics metrics;
  metrics.num_train_examples = split.train.size();
  metrics.train_rmse = Rmse(model->PredictBatch(train_x), train_y);
  {
    FeatureMatrix test_x;
    std::vector<double> test_y;
    GatherFold(workload, split.test, &test_x, &test_y);
    metrics.test_rmse = Rmse(model->PredictBatch(test_x), test_y);
  }
  metrics.train_seconds = timer.ElapsedSeconds();

  surrogate.model_ = std::move(model);
  surrogate.space_ = workload.space;
  surrogate.statistic_ = workload.statistic;
  surrogate.metrics_ = metrics;
  return surrogate;
}

double Surrogate::Predict(const Region& region) const {
  assert(trained());
  return model_->Predict(RegionFeatures(region));
}

namespace {

/// Shared batched-evaluation kernel: one feature-matrix fill, one
/// blocked PredictBatch.
std::vector<double> PredictRegions(const Regressor& model,
                                   const std::vector<Region>& regions) {
  if (regions.empty()) return {};
  FeatureMatrix features(2 * regions[0].dims());
  features.Reserve(regions.size());
  for (const Region& region : regions) {
    features.AddRow(RegionFeatures(region));
  }
  return model.PredictBatch(features);
}

}  // namespace

std::vector<double> Surrogate::EvaluateMany(
    const std::vector<Region>& regions) const {
  assert(trained());
  return PredictRegions(*model_, regions);
}

Status Surrogate::Update(const RegionWorkload& fresh_workload,
                         size_t extra_trees) {
  if (!trained()) return Status::FailedPrecondition("surrogate not trained");
  auto* gbrt = dynamic_cast<GradientBoostedTrees*>(model_.get());
  if (gbrt == nullptr) {
    return Status::FailedPrecondition(
        "incremental updates require a GBRT surrogate");
  }
  if (fresh_workload.size() == 0) {
    return Status::InvalidArgument("empty update workload");
  }
  Stopwatch timer;
  SURF_RETURN_IF_ERROR(gbrt->ContinueFit(
      fresh_workload.features, fresh_workload.targets, extra_trees));
  metrics_.train_seconds += timer.ElapsedSeconds();
  metrics_.num_train_examples += fresh_workload.size();
  return Status::OK();
}

StatusOr<Surrogate> Surrogate::WarmStarted(
    const RegionWorkload& fresh_workload, size_t extra_trees) const {
  if (!trained()) return Status::FailedPrecondition("surrogate not trained");
  const auto* gbrt = dynamic_cast<const GradientBoostedTrees*>(model_.get());
  if (gbrt == nullptr) {
    return Status::FailedPrecondition(
        "warm-start updates require a GBRT surrogate");
  }
  if (fresh_workload.size() == 0) {
    return Status::InvalidArgument("empty update workload");
  }
  Stopwatch timer;
  auto clone = std::make_shared<GradientBoostedTrees>(*gbrt);

  // Hold a slice of the fresh batch out of the fit so the refreshed
  // model's out-of-sample fidelity can be re-declared — otherwise the
  // provenance would keep reporting the pre-refresh holdout RMSE. Tiny
  // batches (< 5) train whole and keep the previous figure.
  Surrogate warmed = *this;
  if (fresh_workload.size() >= 5) {
    Rng rng(1 + metrics_.num_train_examples);
    const Fold split = TrainTestSplit(fresh_workload.size(), 0.2, &rng);
    FeatureMatrix train_x;
    std::vector<double> train_y;
    GatherFold(fresh_workload, split.train, &train_x, &train_y);
    SURF_RETURN_IF_ERROR(clone->ContinueFit(train_x, train_y, extra_trees));
    FeatureMatrix test_x;
    std::vector<double> test_y;
    GatherFold(fresh_workload, split.test, &test_x, &test_y);
    if (!test_y.empty()) {
      warmed.metrics_.test_rmse = Rmse(clone->PredictBatch(test_x), test_y);
    }
    warmed.metrics_.num_train_examples += split.train.size();
  } else {
    SURF_RETURN_IF_ERROR(clone->ContinueFit(
        fresh_workload.features, fresh_workload.targets, extra_trees));
    warmed.metrics_.num_train_examples += fresh_workload.size();
  }
  warmed.model_ = std::move(clone);
  warmed.metrics_.train_seconds += timer.ElapsedSeconds();
  return warmed;
}

StatisticFn Surrogate::AsStatisticFn() const {
  assert(trained());
  // Capture the shared model so the adapter stays valid if the Surrogate
  // object is copied or moved around by callers.
  auto model = model_;
  return [model](const Region& region) {
    return model->Predict(RegionFeatures(region));
  };
}

BatchStatisticFn Surrogate::AsBatchStatisticFn() const {
  assert(trained());
  auto model = model_;
  return [model](const std::vector<Region>& regions) {
    return PredictRegions(*model, regions);
  };
}

Status Surrogate::Save(const std::string& path) const {
  if (!trained()) return Status::FailedPrecondition("surrogate not trained");
  const auto* gbrt = dynamic_cast<const GradientBoostedTrees*>(model_.get());
  if (gbrt == nullptr) {
    return Status::FailedPrecondition(
        "only GBRT surrogates support persistence");
  }
  std::ofstream os(path);
  if (!os) return Status::IOError("cannot write " + path);
  os.precision(17);
  os << "surf-surrogate-v1\n";
  const size_t d = space_.dims();
  os << d << " " << space_.min_half_length << " " << space_.max_half_length
     << "\n";
  for (size_t i = 0; i < d; ++i) {
    os << space_.bounds.lo(i) << " " << space_.bounds.hi(i) << "\n";
  }
  os << static_cast<int>(statistic_.kind) << " " << statistic_.value_col
     << " " << statistic_.label_value << " "
     << statistic_.region_cols.size();
  for (size_t c : statistic_.region_cols) os << " " << c;
  os << "\n";
  os.close();

  // Append the model body via the GBRT's own serializer.
  std::ofstream app(path, std::ios::app);
  std::string model_path = path + ".model";
  SURF_RETURN_IF_ERROR(gbrt->Save(model_path));
  std::ifstream model_in(model_path);
  app << model_in.rdbuf();
  std::remove(model_path.c_str());
  if (!app) return Status::IOError("short write to " + path);
  return Status::OK();
}

StatusOr<Surrogate> Surrogate::Load(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::IOError("cannot open " + path);
  std::string magic;
  is >> magic;
  if (magic != "surf-surrogate-v1") {
    return Status::IOError("bad surrogate header in " + path);
  }
  Surrogate surrogate;
  size_t d = 0;
  double min_len = 0.0, max_len = 0.0;
  is >> d >> min_len >> max_len;
  std::vector<double> lo(d), hi(d);
  for (size_t i = 0; i < d; ++i) is >> lo[i] >> hi[i];
  surrogate.space_.bounds = Bounds(lo, hi);
  surrogate.space_.min_half_length = min_len;
  surrogate.space_.max_half_length = max_len;

  int kind = 0, value_col = -1;
  double label = 0.0;
  size_t n_cols = 0;
  is >> kind >> value_col >> label >> n_cols;
  surrogate.statistic_.kind = static_cast<StatisticKind>(kind);
  surrogate.statistic_.value_col = value_col;
  surrogate.statistic_.label_value = label;
  surrogate.statistic_.region_cols.resize(n_cols);
  for (auto& c : surrogate.statistic_.region_cols) is >> c;
  if (!is) return Status::IOError("truncated surrogate file " + path);

  // Remaining stream is the GBRT body; hand it to the model loader via a
  // temp copy of the remainder.
  std::string rest((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());
  const std::string tmp = path + ".tmp-load";
  {
    std::ofstream out(tmp);
    // Skip leading whitespace/newline.
    size_t start = rest.find_first_not_of(" \n\t\r");
    out << (start == std::string::npos ? "" : rest.substr(start));
  }
  auto model = GradientBoostedTrees::Load(tmp);
  std::remove(tmp.c_str());
  if (!model.ok()) return model.status();
  surrogate.model_ =
      std::make_shared<GradientBoostedTrees>(std::move(model).value());
  return surrogate;
}

}  // namespace surf
