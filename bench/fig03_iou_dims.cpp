// Figure 3: average IoU vs data dimensionality d ∈ 1..5 for the four
// methods, in the paper's four panels ({aggregate, density} × {k=1, 3}).
//
// Accuracy protocol per §V-B: y_R = 1000 (density) / 2 (aggregate), c = 4,
// datasets of 7.5k–12.5k points, IoU averaged over GT regions. Defaults
// run a quick configuration (fewer queries / smaller Naive budget);
// --full restores paper-scale effort.
//
// Output: one table per panel plus a CSV series (--csv path).

#include <cstdio>

#include "bench_common.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const size_t max_dim = static_cast<size_t>(
      flags.GetInt("max-dim", full ? 5 : 3));
  const size_t glowworms = 0;  // PaperScaled default (50·d)
  const size_t iterations = full ? 200 : 100;
  const double naive_budget = full ? 60.0 : 5.0;

  CsvWriter csv({"panel", "dims", "surf", "naive", "prim", "fgso"});
  std::printf("Figure 3 — average IoU vs dimensionality "
              "(%s configuration)\n\n",
              full ? "paper" : "quick");

  int panel_id = 0;
  for (SyntheticStatistic stat :
       {SyntheticStatistic::kAggregate, SyntheticStatistic::kDensity}) {
    for (size_t k : {1u, 3u}) {
      const std::string panel =
          std::string(stat == SyntheticStatistic::kAggregate ? "Aggregate"
                                                             : "Density") +
          " k=" + std::to_string(k);
      std::printf("Panel: %s\n", panel.c_str());
      TablePrinter table({"d", "SuRF", "Naive", "PRIM", "f+GlowWorm"});

      for (size_t d = 1; d <= max_dim; ++d) {
        SyntheticSpec spec;
        spec.dims = d;
        spec.num_gt_regions = k;
        spec.statistic = stat;
        spec.seed = 42 + d + 10 * k + (stat == SyntheticStatistic::kDensity
                                           ? 100
                                           : 0);
        const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
        const Statistic statistic = bench::StatisticFor(ds);
        ScanEvaluator evaluator(&ds.data, statistic);

        // The paper trains with more examples as d grows (300–300k); we
        // scale super-linearly too, just smaller by default.
        const size_t queries = (full ? 4000 : 2000) * d * d + 2000;

        const auto surf_out =
            bench::RunSurf(ds, queries, glowworms, iterations);
        const auto naive_out = bench::RunNaive(ds, evaluator, 6, 6,
                                               naive_budget);
        const auto prim_out = bench::RunPrim(ds);
        const auto fgso_out =
            bench::RunFGso(ds, evaluator, glowworms, iterations);

        const double iou_surf =
            bench::AverageIoU(surf_out.regions, ds.gt_regions);
        const double iou_naive =
            bench::AverageIoU(naive_out.regions, ds.gt_regions);
        const double iou_prim =
            bench::AverageIoU(prim_out.regions, ds.gt_regions);
        const double iou_fgso =
            bench::AverageIoU(fgso_out.regions, ds.gt_regions);

        table.AddRow({std::to_string(d), FormatDouble(iou_surf, 3),
                      FormatDouble(iou_naive, 3),
                      FormatDouble(iou_prim, 3),
                      FormatDouble(iou_fgso, 3)});
        csv.AddRow({static_cast<double>(panel_id),
                    static_cast<double>(d), iou_surf, iou_naive, iou_prim,
                    iou_fgso});
      }
      std::printf("%s\n", table.ToString().c_str());
      ++panel_id;
    }
  }

  const std::string csv_path = flags.GetString("csv", "");
  if (!csv_path.empty()) {
    if (auto st = csv.Write(csv_path); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("series written to %s\n", csv_path.c_str());
  }
  std::printf("Expected shape (paper): IoU decreases with d; SuRF tracks "
              "f+GlowWorm closely; PRIM leads on aggregate k=1 but fails "
              "on density panels.\n");
  return 0;
}
