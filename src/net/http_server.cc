#include "net/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>

#include "util/failpoint.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace surf {

namespace {

using Clock = std::chrono::steady_clock;

/// Polling granularity for the blocking SendAll() helper: the unit at
/// which a blocked write re-checks its deadline.
constexpr int kPollSliceMs = 20;

/// epoll user-data ids for the two non-connection fds the loop owns.
constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = 1;

/// Upper bound on one epoll_wait when no timer is armed sooner.
constexpr int kMaxEpollWaitMs = 100;

/// How long an error-closed connection lingers half-closed, draining
/// the peer's unread bytes so the error response survives (close() with
/// unread input provokes an RST that can discard it).
constexpr double kLingerSeconds = 0.25;

Clock::time_point DeadlineAfter(double seconds) {
  return Clock::now() + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(seconds));
}

bool Expired(Clock::time_point deadline) { return Clock::now() >= deadline; }

/// Waits up to one poll slice (bounded by `deadline`) for `events`.
bool PollSlice(int fd, short events, Clock::time_point deadline) {
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  const int timeout_ms = static_cast<int>(
      std::clamp<long long>(remaining.count(), 0, kPollSliceMs));
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  return ::poll(&pfd, 1, timeout_ms) > 0;
}

std::string LowerAscii(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

/// Serializes a response into the exact wire bytes the server has
/// always produced (status line, the three standard headers, extras,
/// blank line, body).
std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out;
  out.reserve(response.body.size() + 256);
  out.append("HTTP/1.1 ");
  out.append(std::to_string(response.status_code));
  out.push_back(' ');
  out.append(HttpReasonPhrase(response.status_code));
  out.append("\r\nContent-Type: ");
  out.append(response.content_type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(response.body.size()));
  out.append("\r\nConnection: ");
  out.append(keep_alive ? "keep-alive" : "close");
  for (const auto& [name, value] : response.headers) {
    out.append("\r\n");
    out.append(name);
    out.append(": ");
    out.append(value);
  }
  out.append("\r\n\r\n");
  out.append(response.body);
  return out;
}

/// Parses the header section (request line + fields, no trailing CRLF
/// CRLF). Returns an HTTP status code: 0 on success, else the error code
/// to answer with.
int ParseRequestHead(const std::string& head, HttpRequest* request) {
  size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const std::vector<std::string> parts = SplitString(request_line, ' ');
  if (parts.size() != 3) return 400;
  request->method = parts[0];
  request->target = parts[1];
  if (!StartsWith(parts[2], "HTTP/1.")) return 400;

  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t next = head.find("\r\n", pos);
    if (next == std::string::npos) next = head.size();
    const std::string line = head.substr(pos, next - pos);
    pos = next + 2;
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) return 400;
    std::string name = TrimString(line.substr(0, colon));
    // A field line with an empty name (": value") is malformed; older
    // versions quietly accepted it as a header named "".
    if (name.empty()) return 400;
    request->headers.emplace_back(LowerAscii(name),
                                  TrimString(line.substr(colon + 1)));
  }
  return 0;
}

}  // namespace

double HttpRequest::RemainingSeconds() const {
  if (deadline == Clock::time_point::max()) {
    return std::numeric_limits<double>::infinity();
  }
  const double remaining =
      std::chrono::duration<double>(deadline - Clock::now()).count();
  return remaining > 0.0 ? remaining : 0.0;
}

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& h : headers) {
    if (h.first == name) return &h.second;
  }
  return nullptr;
}

const char* HttpReasonPhrase(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 412: return "Precondition Failed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpResponse JsonErrorResponse(int status_code, const std::string& code,
                               const std::string& message) {
  JsonValue error = JsonValue::Object();
  error.Set("code", JsonValue(code));
  error.Set("message", JsonValue(message));
  JsonValue body = JsonValue::Object();
  body.Set("error", std::move(error));
  HttpResponse response;
  response.status_code = status_code;
  response.body = WriteJson(body) + "\n";
  return response;
}

bool SendAll(int fd, const char* data, size_t size, double timeout_seconds) {
  // A delay action here stalls the write (slow-client simulation); an
  // error action drops the response as if the peer vanished mid-write.
  if (!MaybeFailpoint("net.write").ok()) return false;
  const auto deadline = DeadlineAfter(timeout_seconds);
  size_t sent = 0;
  while (sent < size) {
    if (Expired(deadline)) return false;
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return false;  // should not happen; treat as a dead peer
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // Kernel buffer full (tiny SO_SNDBUF, slow reader): wait for
      // writability in bounded slices so the deadline stays live.
      PollSlice(fd, POLLOUT, deadline);
      continue;
    }
    return false;  // hard send error (ECONNRESET, EPIPE, ...)
  }
  return true;
}

/// \brief Per-connection state owned exclusively by the event loop.
struct HttpServer::Connection {
  enum class State {
    kReading,     ///< Accumulating request bytes (or idle keep-alive).
    kDispatched,  ///< A request is with the scheduler; socket parked.
    kWriting,     ///< Flushing a response; EPOLLOUT on backpressure.
    kLingering,   ///< Half-closed after an error; draining peer bytes.
  };

  int fd = -1;
  uint64_t id = 0;
  State state = State::kReading;
  std::string in;   ///< Unconsumed request bytes (pipelining carries over).
  std::string out;  ///< Response bytes being flushed.
  size_t out_off = 0;
  uint32_t events = 0;      ///< Currently registered epoll interest.
  bool registered = false;  ///< fd present in the epoll set.
  bool saw_request_byte = false;  ///< Mid-request (deadline running).
  bool peer_eof = false;
  bool head_parsed = false;
  size_t head_end = 0;        ///< Offset of "\r\n\r\n" once head parsed.
  size_t content_length = 0;  ///< Declared body size once head parsed.
  bool close_after_write = false;
  bool linger_on_close = false;  ///< Error path: drain before closing.
  bool count_served_on_flush = false;
  bool batch_on_flush = false;
  HttpRequest request;  ///< Request being parsed (head fields so far).
  Clock::time_point request_deadline{};
};

HttpServer::HttpServer(Options options, HttpHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start() {
  if (running_.load()) {
    return Status::FailedPrecondition("server already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("invalid bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind " + options_.bind_address + ":" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, options_.accept_backlog) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("listen: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  const int flags = ::fcntl(listen_fd_, F_GETFL, 0);
  ::fcntl(listen_fd_, F_SETFL, flags | O_NONBLOCK);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const std::string err = std::strerror(errno);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    epoll_fd_ = wake_fd_ = -1;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("epoll/eventfd: " + err);
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  // Workers must cover max_inflight admitted requests (admission
  // control, not worker starvation, should bound concurrency); batch
  // capacity defaults to a small slice of that.
  const size_t interactive =
      options_.num_workers > 0
          ? options_.num_workers
          : std::max(ThreadPool::DefaultThreadCount(), options_.max_inflight);
  const size_t batch = options_.batch_workers > 0
                           ? options_.batch_workers
                           : std::max<size_t>(1, interactive / 8);
  sched::PriorityScheduler::Options sched_options;
  sched_options.interactive_workers = interactive;
  sched_options.batch_workers = batch;
  sched_options.max_queue_depth = options_.max_queue_depth;
  scheduler_ = std::make_unique<sched::PriorityScheduler>(sched_options);
  governor_ = std::make_unique<sched::TenantGovernor>(options_.qos);
  wheel_ = std::make_unique<sched::TimerWheel>();

  draining_.store(false);
  running_.store(true, std::memory_order_release);
  loop_ = std::thread([this] { RunLoop(); });
  return Status::OK();
}

void HttpServer::Shutdown() {
  if (!running_.load(std::memory_order_acquire)) return;
  draining_.store(true, std::memory_order_release);
  WakeLoop();
  if (loop_.joinable()) loop_.join();
  // The loop exits only once every dispatched request has completed, so
  // the scheduler drains immediately.
  if (scheduler_ != nullptr) scheduler_->Shutdown();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

HttpServer::Stats HttpServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

sched::PriorityScheduler::Stats HttpServer::scheduler_stats() const {
  return scheduler_ != nullptr ? scheduler_->stats()
                               : sched::PriorityScheduler::Stats{};
}

void HttpServer::WakeLoop() {
  if (wake_fd_ < 0) return;
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void HttpServer::PushCompletion(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(completion));
  }
  WakeLoop();
}

void HttpServer::RunLoop() {
  std::vector<epoll_event> events(128);
  std::vector<uint64_t> fired;
  std::vector<Completion> batch;
  bool listener_closed = false;
  while (true) {
    if (draining_.load(std::memory_order_acquire)) {
      if (!listener_closed) {
        // Drain begins: stop accepting and shed idle keep-alive
        // connections. Mid-request and dispatched connections are
        // served to completion (their deadlines bound the wait).
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        ::close(listen_fd_);
        listen_fd_ = -1;
        listener_closed = true;
        std::vector<uint64_t> idle;
        for (const auto& [id, conn] : conns_) {
          if (conn->state == Connection::State::kReading &&
              !conn->saw_request_byte && conn->in.empty()) {
            idle.push_back(id);
          }
        }
        for (const uint64_t id : idle) {
          auto it = conns_.find(id);
          if (it != conns_.end()) CloseConnection(it->second.get());
        }
      }
      bool drained;
      {
        std::lock_guard<std::mutex> lock(mu_);
        drained = stats_.inflight == 0;
      }
      if (drained && conns_.empty()) break;
    }

    const int timeout = wheel_->TimeoutMs(Clock::now(), kMaxEpollWaitMs);
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout);
    if (n < 0 && errno != EINTR) {
      SURF_LOG(kError) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        AcceptReady();
      } else if (id == kWakeId) {
        uint64_t counter;
        while (::read(wake_fd_, &counter, sizeof(counter)) > 0) {
        }
      } else {
        HandleConnectionEvent(id, events[i].events);
      }
    }

    batch.clear();
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      batch.swap(completions_);
    }
    for (Completion& completion : batch) {
      HandleCompletion(std::move(completion));
    }

    fired.clear();
    wheel_->Advance(Clock::now(), &fired);
    for (const uint64_t id : fired) OnTimer(id);
  }
}

void HttpServer::AcceptReady() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd < 0) return;  // EAGAIN: accepted everything pending
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.connections_accepted;
      ++stats_.connections_open;
    }
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = id;
    Connection* raw = conn.get();
    conns_.emplace(id, std::move(conn));
    UpdateEpoll(raw, EPOLLIN);
    wheel_->Arm(id, DeadlineAfter(options_.idle_timeout_seconds));
  }
}

void HttpServer::HandleConnectionEvent(uint64_t id, uint32_t events) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  if (conn->state == Connection::State::kWriting) {
    if (events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) ContinueWrite(conn);
  } else if (events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
    ReadAvailable(conn);
  }
  it = conns_.find(id);
  if (it != conns_.end() &&
      it->second->state == Connection::State::kReading) {
    ProcessInput(it->second.get());
  }
}

void HttpServer::ReadAvailable(Connection* conn) {
  char chunk[16384];
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      // Lingering connections only drain; everything else accumulates.
      if (conn->state != Connection::State::kLingering) {
        conn->in.append(chunk, static_cast<size_t>(n));
      }
      continue;
    }
    if (n == 0) {
      conn->peer_eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn->peer_eof = true;  // hard error: treat as gone
    break;
  }
  if (conn->state == Connection::State::kLingering && conn->peer_eof) {
    CloseConnection(conn);
  }
}

void HttpServer::ProcessInput(Connection* conn) {
  // Pump: parse and dispatch as many buffered requests as possible
  // until the connection blocks (needs bytes, awaits a worker, hits
  // write backpressure) or closes. Iterative on purpose — a buffer full
  // of pipelined requests must not recurse once per request.
  const uint64_t conn_id = conn->id;
  while (true) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    Connection* c = it->second.get();
    if (c->state != Connection::State::kReading) return;

    if (!c->saw_request_byte) {
      if (c->in.empty()) {
        if (c->peer_eof) CloseConnection(c);
        return;  // idle: keep-alive timer stays armed
      }
      // The per-request deadline starts at the request's first byte.
      c->saw_request_byte = true;
      c->request_deadline = DeadlineAfter(options_.request_deadline_seconds);
      wheel_->Arm(c->id, c->request_deadline);
    }

    if (!c->head_parsed) {
      c->head_end = c->in.find("\r\n\r\n");
      if (c->head_end == std::string::npos) {
        if (c->in.size() > options_.max_header_bytes) {
          ErrorClose(c,
                     JsonErrorResponse(431, "headers_too_large",
                                       "header section exceeds limit"),
                     &Stats::parse_errors);
          return;
        }
        if (c->peer_eof) CloseConnection(c);  // EOF mid-head
        return;                               // need more bytes
      }
      c->request = HttpRequest();
      const int parse_code =
          ParseRequestHead(c->in.substr(0, c->head_end), &c->request);
      if (parse_code != 0) {
        ErrorClose(c,
                   JsonErrorResponse(parse_code, "bad_request",
                                     "malformed HTTP request"),
                   &Stats::parse_errors);
        return;
      }
      if (c->request.FindHeader("transfer-encoding") != nullptr) {
        ErrorClose(
            c,
            JsonErrorResponse(501, "unsupported",
                              "chunked transfer encoding not supported"),
            &Stats::parse_errors);
        return;
      }
      c->content_length = 0;
      if (const std::string* cl = c->request.FindHeader("content-length")) {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
        if (end == cl->c_str() || *end != '\0') {
          ErrorClose(c,
                     JsonErrorResponse(400, "bad_request",
                                       "invalid Content-Length"),
                     &Stats::parse_errors);
          return;
        }
        c->content_length = static_cast<size_t>(v);
      }
      if (c->content_length > options_.max_body_bytes) {
        ErrorClose(c,
                   JsonErrorResponse(413, "payload_too_large",
                                     "request body exceeds limit"),
                   &Stats::parse_errors);
        return;
      }
      c->head_parsed = true;
    }

    const size_t total = c->head_end + 4 + c->content_length;
    if (c->in.size() < total) {
      if (c->peer_eof) CloseConnection(c);  // EOF mid-body
      return;                               // need more bytes
    }

    // One complete request: consume exactly its bytes. Surplus bytes
    // (HTTP pipelining) stay in the buffer and are parsed after this
    // request's response flushes — their deadline starts then.
    c->request.body = c->in.substr(c->head_end + 4, c->content_length);
    c->in.erase(0, total);
    c->request.deadline = c->request_deadline;
    c->saw_request_byte = false;
    c->head_parsed = false;
    wheel_->Disarm(c->id);
    DispatchRequest(c);
    // If the dispatch answered synchronously (QoS rejection flushed in
    // one send) the connection is back to kReading: keep pumping.
  }
}

void HttpServer::DispatchRequest(Connection* conn) {
  HttpRequest request = std::move(conn->request);
  conn->request = HttpRequest();

  bool client_close = false;
  if (const std::string* h = request.FindHeader("connection")) {
    if (LowerAscii(*h) == "close") client_close = true;
  }

  // Global admission control over concurrently dispatched *requests*.
  // Idle keep-alive connections hold no slot, so a fleet of quiet
  // clients cannot starve admission.
  bool admit = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stats_.inflight < options_.max_inflight) {
      ++stats_.inflight;
      admit = true;
    } else {
      ++stats_.connections_rejected;
    }
  }
  if (!admit) {
    HttpResponse rejected = JsonErrorResponse(
        429, "overloaded", "server at max in-flight requests");
    rejected.headers.emplace_back("Retry-After", "1");
    // Asynchronous write + lingering close: a flood of rejected clients
    // costs the loop one buffered send each, never a blocking write.
    ErrorClose(conn, rejected, nullptr);
    return;
  }

  // Per-tenant QoS. Throttled/over-quota answers keep the connection
  // alive: the client's next request may be within budget.
  std::string tenant = "default";
  if (const std::string* h = request.FindHeader(options_.tenant_header)) {
    if (!h->empty()) tenant = *h;
  }
  const auto decision = governor_->Admit(tenant, Clock::now());
  if (decision != sched::TenantGovernor::Decision::kAdmit) {
    const bool throttled =
        decision == sched::TenantGovernor::Decision::kThrottled;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --stats_.inflight;
      if (throttled) {
        ++stats_.tenant_throttled;
      } else {
        ++stats_.tenant_over_quota;
      }
    }
    HttpResponse limited =
        throttled ? JsonErrorResponse(429, "tenant_throttled",
                                      "tenant rate limit exceeded")
                  : JsonErrorResponse(429, "tenant_over_quota",
                                      "tenant concurrency quota exhausted");
    limited.headers.emplace_back("Retry-After", "1");
    const bool keep_alive =
        !client_close && !draining_.load(std::memory_order_acquire);
    conn->count_served_on_flush = false;
    StartWrite(conn, SerializeResponse(limited, keep_alive), keep_alive);
    return;
  }

  bool is_batch = false;
  if (const std::string* h = request.FindHeader(options_.priority_header)) {
    if (LowerAscii(TrimString(*h)) == "batch") is_batch = true;
  }

  conn->state = Connection::State::kDispatched;
  UpdateEpoll(conn, 0);  // park the socket until the response is ready
  wheel_->Disarm(conn->id);

  sched::Job job;
  job.cls = is_batch ? sched::JobClass::kBatch : sched::JobClass::kInteractive;
  job.deadline = request.deadline;
  const uint64_t id = conn->id;
  job.run = [this, id, request = std::move(request), client_close, is_batch,
             tenant]() {
    HttpResponse response;
    try {
      response = handler_(request);
    } catch (const std::exception& e) {
      // A handler bug must not kill the worker or vanish silently: log
      // it, count it, and tell the client something went wrong.
      SURF_LOG(kError) << "handler threw for " << request.method << " "
                       << request.target << ": " << e.what();
      response = JsonErrorResponse(500, "internal", "handler threw");
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.worker_exceptions;
    } catch (...) {
      SURF_LOG(kError) << "handler threw a non-exception type for "
                       << request.method << " " << request.target;
      response = JsonErrorResponse(500, "internal", "handler threw");
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.worker_exceptions;
    }
    Completion done;
    done.conn_id = id;
    done.count_served = true;
    done.batch = is_batch;
    done.tenant = tenant;
    done.tenant_charged = true;
    // Close after this response when the client asked to, or when the
    // server is draining (so clients re-connect elsewhere).
    done.keep_alive =
        !draining_.load(std::memory_order_acquire) && !client_close;
    // The write failpoint is evaluated here on the worker: a delay
    // action stalls this request without stalling the event loop, and
    // an error action drops the response as if the peer vanished.
    if (!MaybeFailpoint("net.write").ok()) {
      done.drop = true;
    } else {
      done.bytes = SerializeResponse(response, done.keep_alive);
    }
    PushCompletion(std::move(done));
  };
  job.shed = [this, id, client_close, is_batch, tenant]() {
    Completion done;
    done.conn_id = id;
    done.shed = true;
    done.batch = is_batch;
    done.tenant = tenant;
    done.tenant_charged = true;
    done.keep_alive =
        !draining_.load(std::memory_order_acquire) && !client_close;
    HttpResponse shed_response = JsonErrorResponse(
        503, "overloaded_shed", "request shed under load; retry later");
    shed_response.headers.emplace_back("Retry-After", "1");
    done.bytes = SerializeResponse(shed_response, done.keep_alive);
    PushCompletion(std::move(done));
  };
  scheduler_->Submit(std::move(job));
}

void HttpServer::HandleCompletion(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stats_.inflight > 0) --stats_.inflight;
    if (completion.shed) ++stats_.requests_shed;
  }
  if (completion.tenant_charged) governor_->Release(completion.tenant);

  auto it = conns_.find(completion.conn_id);
  if (it == conns_.end()) return;  // connection died while the job ran
  Connection* conn = it->second.get();
  if (completion.drop) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.write_failures;
    }
    CloseConnection(conn);
    return;
  }
  conn->count_served_on_flush = completion.count_served;
  conn->batch_on_flush = completion.batch;
  StartWrite(conn, std::move(completion.bytes), completion.keep_alive);
  // The write may have flushed synchronously; resume parsing any
  // pipelined bytes already buffered.
  it = conns_.find(completion.conn_id);
  if (it != conns_.end() &&
      it->second->state == Connection::State::kReading) {
    ProcessInput(it->second.get());
  }
}

void HttpServer::ErrorClose(Connection* conn, const HttpResponse& response,
                            uint64_t Stats::*counter) {
  if (counter != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    ++(stats_.*counter);
  }
  conn->linger_on_close = true;
  conn->count_served_on_flush = false;
  conn->batch_on_flush = false;
  StartWrite(conn, SerializeResponse(response, false), /*keep_alive=*/false);
}

void HttpServer::StartWrite(Connection* conn, std::string bytes,
                            bool keep_alive) {
  conn->out = std::move(bytes);
  conn->out_off = 0;
  conn->close_after_write = !keep_alive;
  conn->state = Connection::State::kWriting;
  wheel_->Arm(conn->id, DeadlineAfter(options_.request_deadline_seconds));
  ContinueWrite(conn);
}

void HttpServer::ContinueWrite(Connection* conn) {
  while (conn->out_off < conn->out.size()) {
    const ssize_t n = ::send(conn->fd, conn->out.data() + conn->out_off,
                             conn->out.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateEpoll(conn, EPOLLOUT);  // flush resumes on writability
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.write_failures;
    }
    CloseConnection(conn);
    return;
  }
  FinishWrite(conn);
}

void HttpServer::FinishWrite(Connection* conn) {
  if (conn->count_served_on_flush) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.requests_served;
    if (conn->batch_on_flush) ++stats_.batch_served;
  }
  conn->count_served_on_flush = false;
  conn->batch_on_flush = false;
  conn->out.clear();
  conn->out_off = 0;
  if (conn->close_after_write || draining_.load(std::memory_order_acquire)) {
    if (conn->linger_on_close && !conn->peer_eof) {
      BeginLinger(conn);
    } else {
      CloseConnection(conn);
    }
    return;
  }
  conn->state = Connection::State::kReading;
  UpdateEpoll(conn, EPOLLIN);
  wheel_->Arm(conn->id, DeadlineAfter(options_.idle_timeout_seconds));
  // Pipelined bytes already buffered are pumped by the caller.
}

void HttpServer::BeginLinger(Connection* conn) {
  // The peer may still be sending (we rejected before reading it all).
  // close() with unread bytes in the receive queue provokes an RST that
  // can discard the just-written response before the client reads it,
  // so half-close our side and drain theirs briefly instead.
  ::shutdown(conn->fd, SHUT_WR);
  conn->state = Connection::State::kLingering;
  UpdateEpoll(conn, EPOLLIN);
  wheel_->Arm(conn->id, DeadlineAfter(kLingerSeconds));
}

void HttpServer::OnTimer(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Connection* conn = it->second.get();
  switch (conn->state) {
    case Connection::State::kReading:
      if (!conn->saw_request_byte) {
        CloseConnection(conn);  // idle keep-alive timeout
        return;
      }
      ErrorClose(conn,
                 JsonErrorResponse(408, "deadline_exceeded",
                                   conn->head_parsed
                                       ? "request body not received in time"
                                       : "request not received in time"),
                 &Stats::request_timeouts);
      return;
    case Connection::State::kWriting: {
      // Write deadline: the peer is too slow to take the response.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.write_failures;
      }
      CloseConnection(conn);
      return;
    }
    case Connection::State::kLingering:
      CloseConnection(conn);
      return;
    case Connection::State::kDispatched:
      return;  // no timer runs while a worker owns the request
  }
}

void HttpServer::CloseConnection(Connection* conn) {
  wheel_->Disarm(conn->id);
  if (conn->registered) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  }
  ::close(conn->fd);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stats_.connections_open > 0) --stats_.connections_open;
  }
  conns_.erase(conn->id);  // frees conn
}

void HttpServer::UpdateEpoll(Connection* conn, uint32_t events) {
  if (events == 0) {
    if (conn->registered) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
      conn->registered = false;
    }
    conn->events = 0;
    return;
  }
  epoll_event ev{};
  ev.events = events;  // level-triggered
  ev.data.u64 = conn->id;
  if (!conn->registered) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->fd, &ev);
    conn->registered = true;
  } else if (conn->events != events) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  }
  conn->events = events;
}

}  // namespace surf
