#ifndef SURF_ML_TREE_H_
#define SURF_ML_TREE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "ml/binning.h"
#include "ml/matrix.h"
#include "util/rng.h"

namespace surf {

/// \brief Hyper-parameters of a single boosted regression tree.
///
/// These mirror the XGBoost knobs the paper sweeps in §V-E/§V-H:
/// `max_depth`, L2 leaf regularization `reg_lambda`, plus the usual
/// structural guards.
struct TreeParams {
  size_t max_depth = 6;
  size_t min_samples_leaf = 1;
  /// Minimum sum of hessians per child (XGBoost's min_child_weight).
  double min_child_weight = 1.0;
  /// L2 regularization on leaf weights (XGBoost's reg_lambda / λ).
  double reg_lambda = 1.0;
  /// Minimum split gain (XGBoost's gamma / γ).
  double min_split_gain = 0.0;
  /// Fraction of features considered per tree (colsample_bytree).
  double colsample = 1.0;
};

/// \brief One regression tree trained on gradient/hessian pairs
/// (second-order boosting; for squared loss g = pred − y, h = 1).
///
/// Training is histogram-based over pre-binned features; prediction walks
/// raw double thresholds, so a fitted tree is independent of the binner.
class RegressionTree {
 public:
  /// Fits the tree on `rows` (indices into the binned matrix).
  /// `binned[j][r]` is the bin of row r on feature j.
  void Fit(const std::vector<std::vector<uint16_t>>& binned,
           const FeatureBinner& binner, const std::vector<double>& grad,
           const std::vector<double>& hess, const std::vector<size_t>& rows,
           const TreeParams& params, Rng* rng);

  /// Leaf value for one raw feature vector.
  double Predict(const std::vector<double>& x) const;
  double Predict(const double* x) const;

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_leaves() const;
  size_t Depth() const;

  /// Text (de)serialization for model persistence.
  void Serialize(std::ostream& os) const;
  static RegressionTree Deserialize(std::istream& is);

 private:
  struct Node {
    int32_t left = -1;    // -1 for leaf
    int32_t right = -1;
    uint32_t feature = 0;
    double threshold = 0.0;  // go left if x[feature] <= threshold
    double value = 0.0;      // leaf output
  };

  struct SplitDecision {
    bool found = false;
    size_t feature = 0;
    uint16_t bin = 0;
    double threshold = 0.0;
    double gain = 0.0;
  };

  int32_t BuildNode(const std::vector<std::vector<uint16_t>>& binned,
                    const FeatureBinner& binner,
                    const std::vector<double>& grad,
                    const std::vector<double>& hess,
                    std::vector<size_t>* rows, size_t begin, size_t end,
                    size_t depth, const TreeParams& params,
                    const std::vector<size_t>& features);

  SplitDecision FindBestSplit(const std::vector<std::vector<uint16_t>>& binned,
                              const FeatureBinner& binner,
                              const std::vector<double>& grad,
                              const std::vector<double>& hess,
                              const std::vector<size_t>& rows, size_t begin,
                              size_t end, const TreeParams& params,
                              const std::vector<size_t>& features) const;

  std::vector<Node> nodes_;
};

}  // namespace surf

#endif  // SURF_ML_TREE_H_
