// Table I: wall-clock comparison of the four methods across data size
// N and dimensionality d.
//
// The paper runs N ∈ {1e5, 1e6, 1e7} with a 3000 s timeout per cell on a
// desktop CPU. The default configuration here scales N down (1e4–1e6) and
// the budget to keep the whole bench under a few minutes on small
// machines; pass --full for the paper's sizes. The *shape* is the claim:
// SuRF's mining time is flat in N and d (it never touches the data),
// f+GlowWorm grows linearly in N, Naive explodes exponentially in d and
// times out, PRIM sits in between.

#include <cstdio>

#include "bench_common.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const bool full = flags.GetBool("full", false);
  const size_t max_dim = static_cast<size_t>(
      flags.GetInt("max-dim", full ? 5 : 3));
  const std::vector<size_t> sizes =
      full ? std::vector<size_t>{100000, 1000000, 10000000}
           : std::vector<size_t>{10000, 100000, 1000000};
  const double budget = flags.GetDouble("budget", full ? 3000.0 : 10.0);
  const size_t glowworms = 100, iterations = 100;  // paper §V-D settings

  std::printf("Table I — method runtimes (seconds); budget %.0fs; "
              "%s configuration\n",
              budget, full ? "paper" : "quick");
  std::printf("cells marked '- (x%%)' timed out after examining x%% of "
              "the grid\n\n");

  std::vector<std::string> header{"Method", "d"};
  for (size_t n : sizes) header.push_back("N=" + std::to_string(n));
  TablePrinter table(header);

  // Pre-generate the base datasets per dimension, then inflate to size.
  for (const std::string& method :
       {std::string("SuRF"), std::string("Naive"),
        std::string("f+GlowWorm"), std::string("PRIM")}) {
    for (size_t d = 1; d <= max_dim; ++d) {
      std::vector<std::string> row{method, std::to_string(d)};
      for (size_t n : sizes) {
        SyntheticSpec spec;
        spec.dims = d;
        spec.num_gt_regions = 1;
        spec.statistic = SyntheticStatistic::kDensity;
        spec.seed = 7 + d;
        spec.num_background = 8000;
        SyntheticDataset ds = SyntheticGenerator::Generate(spec);
        Rng inflate_rng(3 + d);
        ds.data = ds.data.InflateTo(n, 0.002, &inflate_rng);

        std::string cell;
        if (method == "SuRF") {
          // Mining time only: the paper's Table I reports query time; the
          // surrogate is trained once beforehand (its cost is Fig. 6's
          // subject). Training here uses a fixed modest workload.
          const auto out = bench::RunSurf(ds, 2000, glowworms, iterations);
          cell = FormatDouble(out.mine_seconds, 2);
        } else if (method == "Naive") {
          ScanEvaluator eval(&ds.data, bench::StatisticFor(ds));
          const auto out = bench::RunNaive(ds, eval, 6, 6, budget);
          cell = out.timed_out
                     ? "- (" +
                           FormatDouble(100.0 * out.fraction_examined, 1) +
                           "%)"
                     : FormatDouble(out.mine_seconds, 2);
        } else if (method == "f+GlowWorm") {
          ScanEvaluator eval(&ds.data, bench::StatisticFor(ds));
          Stopwatch timer;
          const auto out =
              bench::RunFGso(ds, eval, glowworms, iterations);
          cell = timer.ElapsedSeconds() > budget
                     ? "- (>budget)"
                     : FormatDouble(out.mine_seconds, 2);
        } else {  // PRIM
          const auto out = bench::RunPrim(ds);
          cell = FormatDouble(out.mine_seconds, 2);
        }
        row.push_back(cell);
      }
      table.AddRow(row);
    }
    table.AddSeparator();
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nExpected shape (paper Table I): SuRF flat in N and d (~1-2s); "
      "Naive explodes with d and times out at d>=3-4; f+GlowWorm grows "
      "linearly in N; PRIM degrades with N*d but stays feasible.\n");
  return 0;
}
