#ifndef SURF_CORE_TOPK_H_
#define SURF_CORE_TOPK_H_

/// \file
/// \brief The top-k (k-highest-statistic) query formulation.

#include <cstddef>
#include <vector>

#include "ml/kde.h"
#include "opt/gso.h"
#include "opt/naive_search.h"
#include "opt/objective.h"

namespace surf {

/// \brief Configuration of the top-k alternative formulation.
struct TopKConfig {
  /// Number of regions requested.
  size_t k = 3;
  /// Size regularizer. For count statistics note that J = log(ŷ) −
  /// c·Σ log lᵢ over a uniform-density pocket equals
  /// log(density·2^d) + (1 − c)·Σ log lᵢ: c > 1 collapses to minimal
  /// boxes, c < 1 rewards the largest box sustaining the density — the
  /// natural "densest region" reading — and c = 1 scores pure density.
  double c = 0.8;
  /// Distinctness: regions overlapping a better one by more than this
  /// IoU are not counted toward k.
  double nms_max_iou = 0.25;
  /// GSO engine parameters.
  GsoParams gso;
};

/// \brief Result of a top-k run.
struct TopKResult {
  /// At most k distinct regions, best first.
  std::vector<ScoredRegion> regions;
  /// GSO iterations run.
  size_t iterations = 0;
  /// Objective evaluations issued against the statistic source.
  uint64_t objective_evaluations = 0;
  /// Whether a CancelToken stopped the search early; `regions` then holds
  /// the best distinct regions of the partial swarm.
  bool cancelled = false;
};

/// \brief The top-k formulation the paper contrasts with in §VI: instead
/// of a threshold y_R, the analyst asks for the k highest-statistic
/// regions.
///
/// Implemented over the same GSO engine with the threshold-free fitness
/// J = log(ŷ) − c·Σ log l_i (undefined where ŷ ≤ 0 or f̂ is undefined),
/// then keeping the k best distinct particles. The paper's §VI argument —
/// that top-k concentrates on one region when a single mode dominates,
/// while a threshold query surfaces them all — is demonstrated by
/// `bench/ext_topk`.
class TopKFinder {
 public:
  /// `estimate` supplies f̂ (or f). `space` bounds the particle domain.
  TopKFinder(StatisticFn estimate, RegionSolutionSpace space,
             TopKConfig config);

  /// Attaches a batched estimate source, as in SurfFinder: each GSO
  /// iteration then costs one batched model call for the whole swarm.
  void SetBatchEstimate(BatchStatisticFn batch_estimate) {
    batch_estimate_ = std::move(batch_estimate);
  }

  /// Attaches a KDE prior (non-owning), as in SurfFinder.
  void SetKde(const Kde* kde) { kde_ = kde; }

  /// Attaches a cancellation token polled per GSO iteration, as in
  /// SurfFinder.
  void SetCancelToken(CancelToken cancel) { cancel_ = std::move(cancel); }

  /// Attaches a live progress observer (non-owning), as in SurfFinder.
  void SetProgress(SearchProgress* progress) { progress_ = progress; }

  /// Attaches a trace context (non-owning, nullable), as in SurfFinder:
  /// Find records "search" and "extraction" stage spans.
  void SetTrace(TraceContext* trace) { trace_ = trace; }

  /// Mines the k highest-statistic regions.
  TopKResult Find() const;

  /// The top-k configuration.
  const TopKConfig& config() const { return config_; }

 private:
  StatisticFn estimate_;
  BatchStatisticFn batch_estimate_;  // may be null
  RegionSolutionSpace space_;
  TopKConfig config_;
  const Kde* kde_ = nullptr;
  CancelToken cancel_;
  SearchProgress* progress_ = nullptr;
  TraceContext* trace_ = nullptr;
};

}  // namespace surf

#endif  // SURF_CORE_TOPK_H_
