#include "ml/binning.h"

#include <algorithm>
#include <cassert>

namespace surf {

FeatureBinner::FeatureBinner(const FeatureMatrix& x, size_t max_bins) {
  max_bins = std::clamp<size_t>(max_bins, 2, 4096);
  const size_t n = x.num_rows();
  edges_.resize(x.num_features());
  for (size_t j = 0; j < x.num_features(); ++j) {
    std::vector<double> sorted = x.feature(j);
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

    auto& edges = edges_[j];
    if (sorted.size() <= max_bins) {
      // Few distinct values: one bin per value, edges at midpoints.
      for (size_t i = 0; i + 1 < sorted.size(); ++i) {
        edges.push_back(0.5 * (sorted[i] + sorted[i + 1]));
      }
    } else {
      // Quantile edges over the distinct values (a cheap but effective
      // stand-in for a weighted quantile sketch).
      for (size_t b = 1; b < max_bins; ++b) {
        const double pos = static_cast<double>(b) *
                           static_cast<double>(sorted.size() - 1) /
                           static_cast<double>(max_bins);
        const size_t i = static_cast<size_t>(pos);
        const double edge = 0.5 * (sorted[i] + sorted[std::min(
                                                   i + 1, sorted.size() - 1)]);
        if (edges.empty() || edge > edges.back()) edges.push_back(edge);
      }
    }
  }
  (void)n;
}

uint16_t FeatureBinner::BinIndex(size_t j, double v) const {
  const auto& edges = edges_[j];
  const auto it = std::lower_bound(edges.begin(), edges.end(), v);
  return static_cast<uint16_t>(it - edges.begin());
}

std::vector<std::vector<uint16_t>> FeatureBinner::BinMatrix(
    const FeatureMatrix& x) const {
  assert(x.num_features() == num_features());
  std::vector<std::vector<uint16_t>> out(x.num_features());
  for (size_t j = 0; j < x.num_features(); ++j) {
    out[j].resize(x.num_rows());
    const auto& col = x.feature(j);
    for (size_t r = 0; r < col.size(); ++r) {
      out[j][r] = BinIndex(j, col[r]);
    }
  }
  return out;
}

}  // namespace surf
