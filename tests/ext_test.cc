// Tests for the extension modules: DBSCAN swarm clustering, incremental
// surrogate updates (warm-start boosting), KDE sampling, the top-k
// formulation, and the GSO luciferin scale-invariance fix.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/surf.h"
#include "core/topk.h"
#include "data/synthetic.h"
#include "ml/kde.h"
#include "opt/clustering.h"
#include "opt/test_functions.h"
#include "util/summary.h"

namespace surf {
namespace {

// ------------------------------------------------------------ Clustering

TEST(ClusterSwarmTest, SeparatesTwoGroups) {
  std::vector<Region> particles;
  std::vector<double> fitness;
  std::vector<bool> valid;
  // Two tight groups of five particles each.
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < 5; ++i) {
      particles.push_back(
          Region({0.2 + 0.6 * g + 0.005 * i}, {0.1 + 0.002 * i}));
      fitness.push_back(g == 0 ? 1.0 + i : 10.0 + i);
      valid.push_back(true);
    }
  }
  const auto clusters = ClusterSwarm(particles, fitness, valid, 0.05, 3);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].members.size(), 5u);
  EXPECT_EQ(clusters[1].members.size(), 5u);
  // Best member has the top fitness of its group.
  EXPECT_DOUBLE_EQ(clusters[0].best_fitness, 5.0);
  EXPECT_DOUBLE_EQ(clusters[1].best_fitness, 14.0);
}

TEST(ClusterSwarmTest, NoiseIsDropped) {
  std::vector<Region> particles;
  std::vector<double> fitness;
  std::vector<bool> valid;
  for (int i = 0; i < 6; ++i) {
    particles.push_back(Region({0.5 + 0.004 * i}, {0.1}));
    fitness.push_back(1.0);
    valid.push_back(true);
  }
  // One isolated particle far away.
  particles.push_back(Region({0.05}, {0.45}));
  fitness.push_back(99.0);
  valid.push_back(true);
  const auto clusters = ClusterSwarm(particles, fitness, valid, 0.05, 3);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 6u);
}

TEST(ClusterSwarmTest, InvalidParticlesExcluded) {
  std::vector<Region> particles;
  std::vector<double> fitness;
  std::vector<bool> valid;
  for (int i = 0; i < 8; ++i) {
    particles.push_back(Region({0.5 + 0.003 * i}, {0.1}));
    fitness.push_back(1.0);
    valid.push_back(i % 2 == 0);  // half invalid
  }
  const auto clusters = ClusterSwarm(particles, fitness, valid, 0.05, 2);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].members.size(), 4u);
  for (size_t m : clusters[0].members) EXPECT_TRUE(valid[m]);
}

TEST(ClusterSwarmTest, EmptyInput) {
  EXPECT_TRUE(ClusterSwarm({}, {}, {}, 0.1, 2).empty());
}

TEST(ClusterSwarmTest, CapturesGsoModes) {
  // End-to-end: cluster a converged swarm over a 3-peak landscape and
  // recover all three modes.
  GaussianBumps bumps;
  bumps.peaks = {{0.2, 0.1}, {0.5, 0.3}, {0.8, 0.15}};
  bumps.sigma = 0.08;
  bumps.validity_floor = 0.01;
  GsoParams params;
  params.num_glowworms = 150;
  params.max_iterations = 150;
  params.seed = 3;
  RegionSolutionSpace space;
  space.bounds = Bounds::Unit(1);
  space.min_half_length = 0.01;
  space.max_half_length = 0.5;
  const GsoResult swarm =
      GlowwormSwarmOptimizer(params).Optimize(bumps.AsFitnessFn(), space);
  const auto clusters =
      ClusterSwarm(swarm.particles, swarm.fitness, swarm.valid, 0.06, 4);
  std::set<int> captured;
  for (const auto& cluster : clusters) {
    captured.insert(bumps.NearestPeak(swarm.particles[cluster.best_index]));
  }
  EXPECT_GE(captured.size(), 3u);
}

// --------------------------------------------------- Incremental updates

class IncrementalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticSpec spec;
    spec.dims = 2;
    spec.num_gt_regions = 1;
    spec.statistic = SyntheticStatistic::kDensity;
    spec.seed = 5;
    data_ = SyntheticGenerator::Generate(spec);
    evaluator_ = std::make_unique<ScanEvaluator>(
        &data_.data, Statistic::Count({0, 1}));
    domain_ = data_.data.ComputeBounds({0, 1});
  }

  RegionWorkload MakeWorkload(size_t n, uint64_t seed) {
    WorkloadParams params;
    params.num_queries = n;
    params.seed = seed;
    return GenerateWorkload(*evaluator_, domain_, params);
  }

  SyntheticDataset data_;
  std::unique_ptr<ScanEvaluator> evaluator_;
  Bounds domain_;
};

TEST_F(IncrementalTest, UpdateImprovesWeakModel) {
  // Deliberately under-trained model.
  SurrogateTrainOptions options;
  options.gbrt.n_estimators = 5;
  auto surrogate = Surrogate::Train(MakeWorkload(3000, 1), options);
  ASSERT_TRUE(surrogate.ok());

  const RegionWorkload probe = MakeWorkload(1000, 99);
  auto rmse_on_probe = [&](const Surrogate& s) {
    std::vector<double> pred;
    for (size_t i = 0; i < probe.size(); ++i) {
      pred.push_back(s.Predict(probe.RegionAt(i)));
    }
    double se = 0.0;
    for (size_t i = 0; i < pred.size(); ++i) {
      se += (pred[i] - probe.targets[i]) * (pred[i] - probe.targets[i]);
    }
    return std::sqrt(se / static_cast<double>(pred.size()));
  };
  const double before = rmse_on_probe(*surrogate);

  ASSERT_TRUE(surrogate->Update(MakeWorkload(3000, 2), 60).ok());
  const double after = rmse_on_probe(*surrogate);
  EXPECT_LT(after, before * 0.8);
}

TEST_F(IncrementalTest, UpdateValidatesInput) {
  SurrogateTrainOptions options;
  auto surrogate = Surrogate::Train(MakeWorkload(2000, 3), options);
  ASSERT_TRUE(surrogate.ok());
  RegionWorkload empty;
  empty.features = FeatureMatrix(4);
  EXPECT_FALSE(surrogate->Update(empty, 10).ok());

  Surrogate untrained;
  EXPECT_EQ(untrained.Update(MakeWorkload(100, 4), 10).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(IncrementalTest, ContinueFitRejectsMismatchedWidth) {
  SurrogateTrainOptions options;
  options.gbrt.n_estimators = 10;
  auto surrogate = Surrogate::Train(MakeWorkload(1000, 5), options);
  ASSERT_TRUE(surrogate.ok());
  // Narrower feature matrix (wrong dimensionality).
  GradientBoostedTrees model;
  FeatureMatrix x(2);
  x.AddRow({0.1, 0.2});
  ASSERT_TRUE(model.Fit(x, {1.0}).ok());
  FeatureMatrix wrong(3);
  wrong.AddRow({0.1, 0.2, 0.3});
  EXPECT_FALSE(model.ContinueFit(wrong, {1.0}, 5).ok());
}

TEST_F(IncrementalTest, UpdatedModelGrowsTreeCount) {
  SurrogateTrainOptions options;
  options.gbrt.n_estimators = 20;
  auto surrogate = Surrogate::Train(MakeWorkload(2000, 6), options);
  ASSERT_TRUE(surrogate.ok());
  const auto& gbrt =
      dynamic_cast<const GradientBoostedTrees&>(surrogate->model());
  const size_t before = gbrt.num_trees();
  ASSERT_TRUE(surrogate->Update(MakeWorkload(1000, 7), 15).ok());
  EXPECT_EQ(gbrt.num_trees(), before + 15);
}

// ------------------------------------------------------------ KDE extras

TEST(KdeSamplingTest, SamplePointRoundTrip) {
  std::vector<std::vector<double>> points{{1.0, 2.0}, {3.0, 4.0}};
  const Kde kde = Kde::Fit(points);
  EXPECT_EQ(kde.SamplePoint(0), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(kde.SamplePoint(1), (std::vector<double>{3.0, 4.0}));
}

TEST(KdeSamplingTest, DrawPointFollowsDensity) {
  Rng data_rng(8);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 500; ++i) {
    points.push_back({data_rng.Gaussian(0.3, 0.02)});
  }
  const Kde kde = Kde::Fit(points);
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 2000; ++i) stats.Add(kde.DrawPoint(&rng)[0]);
  EXPECT_NEAR(stats.mean(), 0.3, 0.01);
  EXPECT_LT(stats.stddev(), 0.06);
}

// ----------------------------------------------------------------- TopK

TEST(TopKTest, FindsTheDensestRegions) {
  SyntheticSpec spec;
  spec.dims = 1;
  spec.num_gt_regions = 3;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 10;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  ScanEvaluator eval(&ds.data, Statistic::Count({0}));
  WorkloadParams wparams;
  wparams.num_queries = 3000;
  const RegionWorkload workload =
      GenerateWorkload(eval, ds.data.ComputeBounds({0}), wparams);
  auto surrogate = Surrogate::Train(workload, SurrogateTrainOptions{});
  ASSERT_TRUE(surrogate.ok());

  TopKConfig config;
  config.k = 3;
  config.gso.num_glowworms = 150;
  config.gso.max_iterations = 120;
  TopKFinder finder(surrogate->AsStatisticFn(), workload.space, config);
  const TopKResult result = finder.Find();
  ASSERT_LE(result.regions.size(), 3u);
  ASSERT_GE(result.regions.size(), 1u);
  // The best region must sit on a planted box.
  double best_iou = 0.0;
  for (const auto& gt : ds.gt_regions) {
    best_iou = std::max(best_iou, result.regions[0].region.IoU(gt));
  }
  EXPECT_GT(best_iou, 0.15);
  // Results are score-ordered.
  for (size_t i = 1; i < result.regions.size(); ++i) {
    EXPECT_GE(result.regions[i - 1].fitness, result.regions[i].fitness);
  }
}

TEST(TopKTest, KOneReturnsSingleRegion) {
  SyntheticSpec spec;
  spec.dims = 1;
  spec.num_gt_regions = 1;
  spec.statistic = SyntheticStatistic::kDensity;
  spec.seed = 11;
  const SyntheticDataset ds = SyntheticGenerator::Generate(spec);
  ScanEvaluator eval(&ds.data, Statistic::Count({0}));
  WorkloadParams wparams;
  wparams.num_queries = 2000;
  const RegionWorkload workload =
      GenerateWorkload(eval, ds.data.ComputeBounds({0}), wparams);
  auto surrogate = Surrogate::Train(workload, SurrogateTrainOptions{});
  ASSERT_TRUE(surrogate.ok());
  TopKConfig config;
  config.k = 1;
  config.gso.num_glowworms = 80;
  config.gso.max_iterations = 80;
  TopKFinder finder(surrogate->AsStatisticFn(), workload.space, config);
  EXPECT_LE(finder.Find().regions.size(), 1u);
}

// -------------------------------------------- GSO luciferin invariance

TEST(GsoScaleInvarianceTest, NegativeFitnessLandscapesStillConverge) {
  // Shifting a landscape by a large negative constant must not change the
  // swarm's behaviour (the raw Eq. 6 would let invalid particles
  // outshine valid ones — the failure mode behind the scale-free
  // reinforcement deviation documented in gso.cc).
  GaussianBumps bumps;
  bumps.peaks = {{0.5, 0.25}};
  bumps.sigma = 0.15;
  bumps.validity_floor = 0.05;

  const FitnessFn shifted = [&bumps](const Region& r) {
    FitnessValue fv = bumps.Evaluate(r);
    fv.value -= 1000.0;  // heavily negative everywhere
    return fv;
  };
  GsoParams params;
  params.num_glowworms = 80;
  params.max_iterations = 100;
  params.seed = 12;
  RegionSolutionSpace space;
  space.bounds = Bounds::Unit(1);
  space.min_half_length = 0.01;
  space.max_half_length = 0.5;
  const GsoResult result =
      GlowwormSwarmOptimizer(params).Optimize(shifted, space);
  EXPECT_GT(result.ValidFraction(), 0.5);
  // The best particle sits near the peak.
  double best_dist = 1e9;
  for (size_t i = 0; i < result.particles.size(); ++i) {
    if (!result.valid[i]) continue;
    best_dist = std::min(best_dist,
                         bumps.DistanceToNearestPeak(result.particles[i]));
  }
  EXPECT_LT(best_dist, 0.15);
}

}  // namespace
}  // namespace surf
