// Ablation: result extraction — greedy IoU non-max suppression (the
// SurfFinder default) vs DBSCAN clustering of the converged swarm.
//
// Both reduce ~L particles to a handful of distinct regions. NMS is
// greedy on fitness and needs no density parameters; DBSCAN respects the
// swarm's sub-population structure and drops noise particles, at the cost
// of an (eps, min_points) choice. This bench compares region counts,
// ground-truth coverage, and IoU on the multimodal k = 3 datasets.

#include <cstdio>

#include "bench_common.h"
#include "opt/clustering.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

using namespace surf;

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const size_t trials = static_cast<size_t>(flags.GetInt("trials", 3));

  std::printf("Ablation — swarm-to-regions extraction (NMS vs DBSCAN) on "
              "k=3 density data\n\n");
  TablePrinter table({"trial", "method", "regions", "GT matched (of 3)",
                      "avg IoU"});

  for (size_t trial = 0; trial < trials; ++trial) {
    SyntheticSpec spec;
    spec.dims = 2;
    spec.num_gt_regions = 3;
    spec.statistic = SyntheticStatistic::kDensity;
    spec.seed = 400 + trial;
    const SyntheticDataset ds = SyntheticGenerator::Generate(spec);

    SurfOptions options;
    options.workload.num_queries = 5000;
    options.workload.seed = 500 + trial;
    options.finder.gso.num_glowworms = 180;
    options.finder.gso.max_iterations = 120;
    options.validate_results = false;
    auto surf = Surf::Build(&ds.data, bench::StatisticFor(ds), options);
    if (!surf.ok()) continue;
    const FindResult result = surf->FindRegions(
        bench::ThresholdFor(ds), ThresholdDirection::kAbove);

    auto report = [&](const char* method,
                      const std::vector<Region>& regions) {
      size_t matched = 0;
      for (const auto& gt : ds.gt_regions) {
        for (const auto& r : regions) {
          if (r.IoU(gt) > 0.2) {
            ++matched;
            break;
          }
        }
      }
      table.AddRow({std::to_string(trial + 1), method,
                    std::to_string(regions.size()),
                    std::to_string(matched),
                    FormatDouble(bench::AverageIoU(regions, ds.gt_regions),
                                 3)});
    };

    // NMS regions come straight from the finder.
    std::vector<Region> nms_regions;
    for (const auto& r : result.regions) nms_regions.push_back(r.region);
    report("NMS", nms_regions);

    // DBSCAN over the same final swarm.
    const double eps = 0.08 * surf->space().FlatDiagonal();
    const auto clusters = ClusterSwarm(
        result.gso.particles, result.gso.fitness, result.gso.valid, eps, 4);
    std::vector<Region> dbscan_regions;
    for (const auto& cluster : clusters) {
      dbscan_regions.push_back(result.gso.particles[cluster.best_index]);
    }
    report("DBSCAN", dbscan_regions);
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nExpected: both extractors recover the planted regions; "
              "DBSCAN suppresses stray particles more aggressively "
              "(fewer, cleaner regions), NMS is parameter-light and "
              "keeps isolated high-fitness finds.\n");
  return 0;
}
