#ifndef SURF_UTIL_TRACE_H_
#define SURF_UTIL_TRACE_H_

/// \file
/// \brief Low-overhead hierarchical span recorder for the mining
/// pipeline.
///
/// A `TraceContext` is one request's span tree: monotonic-clock timings,
/// thread-safe recording from pool workers, and a hard span cap so a
/// runaway loop can grow a trace but never the process. The pipeline
/// threads a `TraceContext*` alongside the existing `CancelToken`;
/// `nullptr` means tracing is off, and every instrumentation site then
/// costs exactly one predictable branch — the same cost discipline as
/// the failpoint registry (util/failpoint.h). Spans observe, never
/// branch: a traced request computes bit-identical results to an
/// untraced one.
///
/// `TraceSpan` is the RAII front door. It parents itself to the
/// innermost open span on the current thread (a thread-local stack), so
/// nesting falls out of scoping; workers that start spans off-thread
/// pass an explicit parent index instead. Long loops that want one span
/// per batch without per-iteration RAII churn use the manual
/// `BeginSpan`/`EndSpan` pair on the context.
///
/// Every span closed with a non-kNone stage also feeds the process-wide
/// `StageStats` histograms, rendered as `surf_stage_seconds{stage=...}`
/// in /metrics — so aggregate per-stage latency is visible even when
/// nobody keeps the individual traces.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace surf {

/// \brief Pipeline stage a span accounts to in the aggregate
/// histograms. The four top-level stages (workload_gen, training,
/// search, extraction) partition a cache-miss request's wall-time;
/// labelling spans are children *inside* workload_gen and are exported
/// as their own histogram without being part of the partition.
enum class TraceStage : int {
  kNone = 0,
  kWorkloadGen,
  kLabelling,
  kTraining,
  kSearch,
  kExtraction,
};

/// Number of stages, kNone included (for enumeration loops).
inline constexpr int kNumTraceStages = 6;

/// Canonical stage label ("workload_gen", ...); "" for kNone.
const char* TraceStageName(TraceStage stage);

/// Small dense per-thread index (0, 1, 2, ... in first-use order),
/// shared by trace spans and log lines so the two are correlatable.
uint32_t CurrentThreadIndex();

/// \brief One request's hierarchical span recording.
class TraceContext {
 public:
  /// \brief One recorded span. Timestamps are nanoseconds since the
  /// context's construction (its monotonic epoch).
  struct Span {
    /// Site name ("request", "training", "gso_iterations", ...).
    const char* name = "";
    /// Index of the parent span; -1 for roots.
    int32_t parent = -1;
    /// Stage the span accounts to in StageStats (kNone = tree-only).
    TraceStage stage = TraceStage::kNone;
    /// Start offset from the context epoch, nanoseconds.
    uint64_t start_ns = 0;
    /// Duration, nanoseconds; 0 while the span is still open.
    uint64_t dur_ns = 0;
    /// Dense index of the recording thread (CurrentThreadIndex()).
    uint32_t tid = 0;
    /// Free-form key/value annotations (counters, ranges, backends).
    std::vector<std::pair<std::string, std::string>> attrs;
  };

  /// Span cap per context: spans past the cap are counted in
  /// `dropped()` instead of recorded, so a pathological loop cannot
  /// grow a trace without bound.
  static constexpr size_t kMaxSpans = 8192;

  /// Assigns a process-unique id ("trace-1", "trace-2", ...) and pins
  /// the monotonic epoch.
  TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// The process-unique trace id.
  const std::string& id() const { return id_; }

  /// Nanoseconds since construction (monotonic).
  uint64_t ElapsedNs() const;

  /// Opens a span parented to the innermost open TraceSpan on the
  /// calling thread (or a root when there is none). Returns the span
  /// index, or -1 when the cap is hit (then counted as dropped).
  int32_t BeginSpan(const char* name, TraceStage stage);

  /// Opens a span with an explicit parent (for work handed to another
  /// thread; pass -1 for a root).
  int32_t BeginSpan(const char* name, TraceStage stage, int32_t parent);

  /// Closes span `index` (no-op for -1), stamping its duration and
  /// feeding StageStats when the span carries a stage.
  void EndSpan(int32_t index);

  /// Attaches a key/value annotation to span `index` (no-op for -1).
  void AddAttr(int32_t index, const char* key, std::string value);

  /// Consistent copy of every span recorded so far.
  std::vector<Span> Snapshot() const;

  /// Spans rejected by the kMaxSpans cap.
  uint64_t dropped() const;

  /// Total seconds of *closed* spans per stage (kNone excluded by
  /// returning 0 at index 0). Nested spans of the same stage are summed
  /// as-is; the pipeline only assigns stages so they never self-nest.
  std::array<double, kNumTraceStages> StageSeconds() const;

 private:
  friend class TraceSpan;

  std::string id_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  uint64_t dropped_ = 0;
};

namespace internal {

/// Thread-local innermost-open-span cursor; TraceSpan saves/restores it
/// LIFO so nesting works across call depth without plumbing indices.
struct TraceCursor {
  TraceContext* ctx = nullptr;
  int32_t span = -1;
};

TraceCursor& CurrentTraceCursor();

}  // namespace internal

/// The id of the trace the innermost open TraceSpan on this thread
/// belongs to, or nullptr when no span is open (used by the logger to
/// prefix lines with the request's trace id).
const std::string* CurrentTraceId();

/// \brief RAII span. With a null context the constructor and destructor
/// are each a single branch — no allocation, no clock read, no atomics.
class TraceSpan {
 public:
  /// Opens a span parented to the thread's innermost open span.
  TraceSpan(TraceContext* ctx, const char* name,
            TraceStage stage = TraceStage::kNone) {
    if (ctx == nullptr) return;  // tracing off: the one-branch fast path
    Open(ctx, name, stage, /*use_cursor_parent=*/true, -1);
  }

  /// Opens a span with an explicit parent (for spans recorded on a
  /// different thread than their parent).
  TraceSpan(TraceContext* ctx, const char* name, TraceStage stage,
            int32_t parent) {
    if (ctx == nullptr) return;
    Open(ctx, name, stage, /*use_cursor_parent=*/false, parent);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (ctx_ == nullptr) return;
    Close();
  }

  /// Annotates the span (no-ops when tracing is off).
  void Attr(const char* key, std::string value) {
    if (ctx_ != nullptr) ctx_->AddAttr(span_, key, std::move(value));
  }
  void Attr(const char* key, uint64_t value);
  void Attr(const char* key, double value);

  /// The underlying span index (-1 when tracing is off or the span was
  /// dropped) — pass as the explicit parent for off-thread children.
  int32_t index() const { return span_; }

 private:
  void Open(TraceContext* ctx, const char* name, TraceStage stage,
            bool use_cursor_parent, int32_t parent);
  void Close();

  TraceContext* ctx_ = nullptr;
  int32_t span_ = -1;
  /// Saved cursor, restored on close (LIFO nesting).
  internal::TraceCursor saved_;
  /// Whether this span installed itself as the thread's cursor.
  bool installed_ = false;
};

/// \brief Process-wide per-stage latency histograms, fed by every
/// closed span that carries a stage. Lock-free recording (relaxed
/// atomics); rendering reads are monotonic-but-unsynchronized, which is
/// the usual Prometheus contract.
class StageStats {
 public:
  /// Upper bounds (seconds) of the histogram buckets; the implicit
  /// final bucket is +Inf. Matches ServerMetrics' request histogram so
  /// stage and request latencies line up in dashboards.
  static constexpr std::array<double, 14> kBucketBoundsSeconds = {
      0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
      0.1,    0.25,  0.5,    1.0,   2.5,  5.0,   10.0};
  static constexpr size_t kNumBuckets = kBucketBoundsSeconds.size() + 1;

  /// The process-wide instance.
  static StageStats& Instance();

  /// Records one closed span of `stage` (kNone is ignored).
  void Record(TraceStage stage, uint64_t dur_ns);

  /// \brief Point-in-time copy of one stage's histogram.
  struct Snapshot {
    std::array<uint64_t, kNumBuckets> buckets{};
    uint64_t count = 0;
    double sum_seconds = 0.0;
  };
  Snapshot Get(TraceStage stage) const;

  /// Zeroes every histogram (tests only; concurrent Record calls may
  /// survive the wipe).
  void Reset();

 private:
  struct PerStage {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_ns{0};
  };
  std::array<PerStage, kNumTraceStages> stages_;
};

/// \brief Bounded ring of recently completed traces, keyed by trace id
/// (backs `GET /v1/trace/{id}`). Oldest traces fall off the end.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity) : capacity_(capacity) {}

  /// Inserts a completed trace (evicting the oldest past capacity).
  void Add(std::shared_ptr<const TraceContext> trace);

  /// The retained trace with `id`, or null.
  std::shared_ptr<const TraceContext> Find(const std::string& id) const;

  /// Retained traces.
  size_t size() const;

  /// The configured capacity.
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  /// Insertion order, oldest first.
  std::vector<std::shared_ptr<const TraceContext>> traces_;
};

}  // namespace surf

#endif  // SURF_UTIL_TRACE_H_
