// Quickstart: mine dense regions of a synthetic 2-D dataset with SuRF.
//
// The dataset plants three ground-truth boxes that are much denser than
// the uniform background (the paper's Fig. 2 density setting). We build
// the full SuRF pipeline — random past-query workload, GBRT surrogate,
// KDE prior, GSO mining — then ask for every region holding more than
// 1,000 points and compare the answers against the planted truth.
//
// Run:  ./build/examples/quickstart [--queries N] [--glowworms L]

#include <cstdio>

#include "core/surf.h"
#include "data/synthetic.h"
#include "util/cli.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  surf::CliFlags flags(argc, argv);

  // 1. Generate a dataset with k = 3 planted dense boxes in [0,1]^2.
  surf::SyntheticSpec spec;
  spec.dims = 2;
  spec.num_gt_regions = 3;
  spec.statistic = surf::SyntheticStatistic::kDensity;
  spec.num_background = 10000;
  spec.seed = 42;
  const surf::SyntheticDataset synthetic =
      surf::SyntheticGenerator::Generate(spec);
  std::printf("dataset: %zu points, %zu planted regions\n",
              synthetic.data.num_rows(), synthetic.gt_regions.size());

  // 2. Build the SuRF pipeline for the COUNT statistic over (a1, a2).
  surf::SurfOptions options;
  options.workload.num_queries =
      static_cast<size_t>(flags.GetInt("queries", 8000));
  options.finder.gso.num_glowworms =
      static_cast<size_t>(flags.GetInt("glowworms", 150));
  options.finder.gso.max_iterations = 120;

  auto surf_or = surf::Surf::Build(
      &synthetic.data, surf::Statistic::Count(synthetic.region_cols),
      options);
  if (!surf_or.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 surf_or.status().ToString().c_str());
    return 1;
  }
  const surf::Surf& surf_pipeline = *surf_or;
  std::printf("surrogate: test RMSE %.1f (train %.1f), trained in %.2fs\n",
              surf_pipeline.surrogate().metrics().test_rmse,
              surf_pipeline.surrogate().metrics().train_rmse,
              surf_pipeline.surrogate().metrics().train_seconds);

  // 3. Mine all regions with more than 1,000 points.
  const double threshold = flags.GetDouble("threshold", 1000.0);
  const surf::FindResult result = surf_pipeline.FindRegions(
      threshold, surf::ThresholdDirection::kAbove);

  std::printf(
      "mining: %.2fs, %zu iterations, %llu surrogate evaluations, "
      "%.0f%% of particles in valid space\n",
      result.report.seconds, result.report.iterations,
      static_cast<unsigned long long>(result.report.objective_evaluations),
      100.0 * result.report.particle_valid_fraction);

  // 4. Report, matching each found region to its closest planted box.
  surf::TablePrinter table(
      {"region", "estimate", "true count", "complies", "best IoU vs GT"});
  for (size_t i = 0; i < result.regions.size(); ++i) {
    const auto& found = result.regions[i];
    double best_iou = 0.0;
    for (const auto& gt : synthetic.gt_regions) {
      best_iou = std::max(best_iou, found.region.IoU(gt));
    }
    table.AddRow({"#" + std::to_string(i + 1),
                  surf::FormatDouble(found.estimate, 0),
                  surf::FormatDouble(found.true_value, 0),
                  found.complies_true ? "yes" : "no",
                  surf::FormatDouble(best_iou, 3)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("true-compliance of reported regions: %.0f%%\n",
              100.0 * result.report.true_compliance);
  return 0;
}
