#include "geom/region.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/string_util.h"

namespace surf {

Region::Region(std::vector<double> center, std::vector<double> half_lengths)
    : center_(std::move(center)), half_lengths_(std::move(half_lengths)) {
  assert(center_.size() == half_lengths_.size());
}

Region Region::FromCorners(const std::vector<double>& lo,
                           const std::vector<double>& hi) {
  assert(lo.size() == hi.size());
  std::vector<double> center(lo.size()), half(lo.size());
  for (size_t i = 0; i < lo.size(); ++i) {
    assert(lo[i] <= hi[i]);
    center[i] = 0.5 * (lo[i] + hi[i]);
    half[i] = 0.5 * (hi[i] - lo[i]);
  }
  return Region(std::move(center), std::move(half));
}

Region Region::FromFlat(const std::vector<double>& flat) {
  assert(flat.size() % 2 == 0);
  const size_t d = flat.size() / 2;
  std::vector<double> center(flat.begin(), flat.begin() + d);
  std::vector<double> half(flat.begin() + d, flat.end());
  return Region(std::move(center), std::move(half));
}

std::vector<double> Region::ToFlat() const {
  std::vector<double> flat;
  flat.reserve(2 * dims());
  flat.insert(flat.end(), center_.begin(), center_.end());
  flat.insert(flat.end(), half_lengths_.begin(), half_lengths_.end());
  return flat;
}

bool Region::Contains(const double* a) const {
  for (size_t i = 0; i < dims(); ++i) {
    if (a[i] < lo(i) || a[i] > hi(i)) return false;
  }
  return true;
}

bool Region::Contains(const std::vector<double>& a) const {
  assert(a.size() >= dims());
  return Contains(a.data());
}

double Region::Volume() const {
  double v = 1.0;
  for (size_t i = 0; i < dims(); ++i) {
    const double side = 2.0 * half_lengths_[i];
    if (side <= 0.0) return 0.0;
    v *= side;
  }
  return v;
}

bool Region::Degenerate() const {
  for (double l : half_lengths_) {
    if (l < 0.0 || !std::isfinite(l)) return true;
  }
  for (double x : center_) {
    if (!std::isfinite(x)) return true;
  }
  return false;
}

double Region::OverlapVolume(const Region& other) const {
  assert(dims() == other.dims());
  double v = 1.0;
  for (size_t i = 0; i < dims(); ++i) {
    const double olo = std::max(lo(i), other.lo(i));
    const double ohi = std::min(hi(i), other.hi(i));
    if (ohi <= olo) return 0.0;
    v *= (ohi - olo);
  }
  return v;
}

double Region::UnionVolume(const Region& other) const {
  return Volume() + other.Volume() - OverlapVolume(other);
}

double Region::IoU(const Region& other) const {
  const double inter = OverlapVolume(other);
  const double uni = UnionVolume(other);
  if (uni <= 0.0) return 0.0;
  return inter / uni;
}

bool Region::Within(const Region& other) const {
  assert(dims() == other.dims());
  for (size_t i = 0; i < dims(); ++i) {
    if (lo(i) < other.lo(i) || hi(i) > other.hi(i)) return false;
  }
  return true;
}

double Region::FlatDistance(const Region& other) const {
  assert(dims() == other.dims());
  double s = 0.0;
  for (size_t i = 0; i < dims(); ++i) {
    const double dc = center_[i] - other.center_[i];
    const double dl = half_lengths_[i] - other.half_lengths_[i];
    s += dc * dc + dl * dl;
  }
  return std::sqrt(s);
}

void Region::ClampTo(const std::vector<double>& lo,
                     const std::vector<double>& hi, double min_len,
                     double max_len) {
  assert(lo.size() == dims() && hi.size() == dims());
  for (size_t i = 0; i < dims(); ++i) {
    center_[i] = std::clamp(center_[i], lo[i], hi[i]);
    half_lengths_[i] = std::clamp(half_lengths_[i], min_len, max_len);
  }
}

std::string Region::ToString() const {
  std::vector<std::string> cs, ls;
  for (size_t i = 0; i < dims(); ++i) {
    cs.push_back(FormatDouble(center_[i]));
    ls.push_back(FormatDouble(half_lengths_[i]));
  }
  return "center=[" + JoinStrings(cs, ",") + "], len=[" +
         JoinStrings(ls, ",") + "]";
}

bool Region::operator==(const Region& other) const {
  return center_ == other.center_ && half_lengths_ == other.half_lengths_;
}

}  // namespace surf
