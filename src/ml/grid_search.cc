#include "ml/grid_search.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "ml/cv.h"
#include "ml/metrics.h"
#include "util/summary.h"

namespace surf {

std::vector<GbrtParams> GridSearchSpace::Enumerate(
    const GbrtParams& base) const {
  std::vector<GbrtParams> out;
  out.reserve(NumCombinations());
  for (double lr : learning_rates) {
    for (size_t depth : max_depths) {
      for (size_t trees : n_estimators) {
        for (double lambda : reg_lambdas) {
          GbrtParams p = base;
          p.learning_rate = lr;
          p.max_depth = depth;
          p.n_estimators = trees;
          p.reg_lambda = lambda;
          out.push_back(p);
        }
      }
    }
  }
  return out;
}

GridSearchSpace GridSearchSpace::Small() {
  GridSearchSpace space;
  space.learning_rates = {0.1, 0.05};
  space.max_depths = {4, 7};
  space.n_estimators = {100};
  space.reg_lambdas = {1.0, 0.1};
  return space;
}

double CrossValidatedRmse(const FeatureMatrix& x,
                          const std::vector<double>& y,
                          const GbrtParams& params, size_t k_folds,
                          uint64_t seed, double* std_out) {
  assert(k_folds >= 2);
  Rng rng(seed);
  const auto folds = KFoldSplits(x.num_rows(), k_folds, &rng);

  RunningStats stats;
  for (const auto& fold : folds) {
    FeatureMatrix train_x = x.Gather(fold.train);
    std::vector<double> train_y;
    train_y.reserve(fold.train.size());
    for (size_t r : fold.train) train_y.push_back(y[r]);

    GradientBoostedTrees model(params);
    const Status st = model.Fit(train_x, train_y);
    assert(st.ok());
    (void)st;

    std::vector<double> pred, truth;
    pred.reserve(fold.test.size());
    truth.reserve(fold.test.size());
    for (size_t r : fold.test) {
      pred.push_back(model.Predict(x.Row(r)));
      truth.push_back(y[r]);
    }
    stats.Add(Rmse(pred, truth));
  }
  if (std_out != nullptr) *std_out = stats.stddev();
  return stats.mean();
}

GridSearchResult GridSearchCV(const FeatureMatrix& x,
                              const std::vector<double>& y,
                              const GridSearchSpace& space,
                              const GbrtParams& base, size_t k_folds,
                              uint64_t seed, ThreadPool* pool) {
  const auto combos = space.Enumerate(base);
  GridSearchResult result;
  result.entries.resize(combos.size());

  auto evaluate = [&](size_t i) {
    GridSearchEntry entry;
    entry.params = combos[i];
    entry.mean_rmse = CrossValidatedRmse(x, y, combos[i], k_folds,
                                         seed + i, &entry.std_rmse);
    result.entries[i] = entry;
  };

  if (pool != nullptr) {
    ParallelFor(pool, combos.size(), evaluate);
  } else {
    for (size_t i = 0; i < combos.size(); ++i) evaluate(i);
  }

  double best = std::numeric_limits<double>::infinity();
  for (const auto& entry : result.entries) {
    if (entry.mean_rmse < best) {
      best = entry.mean_rmse;
      result.best_params = entry.params;
      result.best_rmse = entry.mean_rmse;
    }
  }
  return result;
}

}  // namespace surf
